// Parallel-engine bit-equivalence sweep (acceptance gate of the engine/
// subsystem), extending the equivalence chain of dist_equivalence_test
// and async_equivalence_test: parallel ≡ serial ≡ async ≡ sync
// (≡ centralized, by the existing gates).
//
// For every seed x {line, tree} x thread count in {1, 2, 8} the protocol
// must select the same instances and report identical profit, duals,
// lambda and round/message accounting as the 1-thread (serial) engine —
// exact comparisons on purpose: shard merges are by shard id and every
// floating-point accumulation is per-owner, so parallelism must never
// perturb a single bit. Also the MessagePlane canonical-order unit suite
// and ParallelRunner coverage/barrier units.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "dist/protocol.hpp"
#include "engine/message_plane.hpp"
#include "engine/parallel_runner.hpp"
#include "gen/scenario.hpp"
#include "net/runner.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {3, 14, 25, 36, 47};
constexpr std::int32_t kThreadCounts[] = {1, 2, 8};

TreeProblem sweepTree(std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 16 + static_cast<std::int32_t>(seed % 11);
  cfg.numNetworks = 2 + static_cast<std::int32_t>(seed % 3);
  cfg.demands.numDemands = 14 + static_cast<std::int32_t>(seed % 9);
  cfg.demands.accessProbability = 0.6;
  cfg.demands.profitMax = 8.0;
  return makeTreeScenario(cfg);
}

LineProblem sweepLine(std::uint64_t seed) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 28 + static_cast<std::int32_t>(seed % 21);
  cfg.numResources = 2 + static_cast<std::int32_t>(seed % 2);
  cfg.demands.numDemands = 12 + static_cast<std::int32_t>(seed % 8);
  cfg.demands.windowSlack = 0.4;
  cfg.demands.processingMax = 5;
  cfg.demands.accessProbability = 0.7;
  return makeLineScenario(cfg);
}

DistributedOptions sweepOptions(std::uint64_t seed, std::int32_t threads) {
  DistributedOptions opt;
  opt.seed = seed * 17 + 3;
  opt.misRoundBudget = 6;
  opt.stepsPerStage = 5;
  opt.threads = threads;
  return opt;
}

void expectBitIdentical(const DistributedResult& parallel,
                        const DistributedResult& serial) {
  EXPECT_EQ(parallel.solution.instances, serial.solution.instances)
      << "thread count must never change the selected instances";
  EXPECT_EQ(parallel.profit, serial.profit);
  EXPECT_EQ(parallel.dualObjective, serial.dualObjective);
  EXPECT_EQ(parallel.dualUpperBound, serial.dualUpperBound);
  EXPECT_EQ(parallel.lambdaMeasured, serial.lambdaMeasured);
  EXPECT_EQ(parallel.raises, serial.raises);
  EXPECT_EQ(parallel.activeSteps, serial.activeSteps);
  EXPECT_EQ(parallel.network.rounds, serial.network.rounds);
  EXPECT_EQ(parallel.network.busyRounds, serial.network.busyRounds);
  EXPECT_EQ(parallel.network.messages, serial.network.messages);
  EXPECT_EQ(parallel.network.payload, serial.network.payload);
  EXPECT_TRUE(parallel.localViewsConsistent);
}

class ParallelEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEquivalenceSweep, TreeBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedResult serial =
      runDistributedUnitTree(problem, sweepOptions(seed, 1));
  for (const std::int32_t threads : kThreadCounts) {
    const DistributedResult parallel =
        runDistributedUnitTree(problem, sweepOptions(seed, threads));
    expectBitIdentical(parallel, serial);
  }
}

TEST_P(ParallelEquivalenceSweep, LineBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  const LineProblem problem = sweepLine(seed);
  const DistributedResult serial =
      runDistributedUnitLine(problem, sweepOptions(seed, 1));
  for (const std::int32_t threads : kThreadCounts) {
    const DistributedResult parallel =
        runDistributedUnitLine(problem, sweepOptions(seed, threads));
    expectBitIdentical(parallel, serial);
  }
}

// Crash-stop faults interact with the active sets (dead instances leave
// them for good); the parallel engine must reproduce the serial fault
// semantics exactly.
TEST_P(ParallelEquivalenceSweep, TreeCrashFaultsBitIdentical) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  DistributedOptions serialOpt = sweepOptions(seed, 1);
  serialOpt.crashProcessors = {0, 3, 5};
  serialOpt.crashAtTuple = 7;
  const DistributedResult serial =
      runDistributedUnitTree(problem, serialOpt);
  EXPECT_EQ(serial.crashedProcessors, 3);
  for (const std::int32_t threads : kThreadCounts) {
    DistributedOptions opt = serialOpt;
    opt.threads = threads;
    const DistributedResult parallel = runDistributedUnitTree(problem, opt);
    expectBitIdentical(parallel, serial);
    EXPECT_EQ(parallel.crashedProcessors, serial.crashedProcessors);
  }
}

// The full chain in one place: the parallel engine over the lossy async
// transport must equal the serial engine over the synchronous bus.
TEST_P(ParallelEquivalenceSweep, ParallelOverAsyncEqualsSerialOverSync) {
  const std::uint64_t seed = GetParam();
  const TreeProblem problem = sweepTree(seed);
  const DistributedResult serial =
      runDistributedUnitTree(problem, sweepOptions(seed, 1));

  AsyncConfig net;
  net.seed = seed + 9;
  net.link.latency.model = LatencyModel::Uniform;
  net.link.latency.base = 1.0;
  net.link.latency.spread = 2.0;
  net.link.dropProbability = 0.1;
  net.link.retransmitTimeout = 4.0;
  const DistributedResult parallelAsync =
      runAsyncUnitTree(problem, sweepOptions(seed, 8), net);
  expectBitIdentical(parallelAsync, serial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceSweep,
                         ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

// The scale presets stay deterministic and well-formed at test scale.
TEST(ParallelPresets, ScaledPresetsAreDeterministicAndRunnable) {
  const LineProblem line1 = makeMetroLine100k(5, 600);
  const LineProblem line2 = makeMetroLine100k(5, 600);
  EXPECT_EQ(line1.demands.size(), 600u);
  ASSERT_EQ(line1.access.size(), line2.access.size());
  EXPECT_EQ(line1.access, line2.access);
  for (const auto& access : line1.access) {
    EXPECT_GE(access.size(), 1u);
    EXPECT_LE(access.size(), 2u);
  }

  const TreeProblem tree = makeCdnTree250k(5, 400);
  EXPECT_EQ(tree.demands.size(), 400u);

  const DistributedResult serial =
      runDistributedUnitLine(line1, sweepOptions(1, 1));
  const DistributedResult parallel =
      runDistributedUnitLine(line1, sweepOptions(1, 8));
  expectBitIdentical(parallel, serial);
}

// ---- MessagePlane canonical-order unit suite ----

Message msg(MessageKind kind, DemandId from, InstanceId instance,
            double value = 0.0) {
  return {kind, from, instance, value};
}

TEST(MessagePlane, DeliversInCanonicalOrderPerDestination) {
  MessagePlane plane(4);
  // Staged deliberately out of canonical order, across two destinations.
  plane.stage(2, msg(MessageKind::MisActive, 3, 9));
  plane.stage(0, msg(MessageKind::MisJoin, 1, 4));
  plane.stage(2, msg(MessageKind::MisActive, 1, 7));
  plane.stage(2, msg(MessageKind::DualRaise, 1, 5, 0.5));
  plane.stage(0, msg(MessageKind::MisActive, 0, 2));
  EXPECT_TRUE(plane.hasStaged());
  EXPECT_EQ(plane.stagedCount(), 5);
  plane.deliver();

  const auto inbox2 = plane.inbox(2);
  ASSERT_EQ(inbox2.size(), 3u);
  EXPECT_EQ(inbox2[0].from, 1);
  EXPECT_EQ(inbox2[0].instance, 5);  // (1,5) < (1,7) < (3,9)
  EXPECT_EQ(inbox2[1].instance, 7);
  EXPECT_EQ(inbox2[2].from, 3);
  for (std::size_t i = 1; i < inbox2.size(); ++i) {
    EXPECT_FALSE(canonicalMessageLess(inbox2[i], inbox2[i - 1]));
  }

  const auto inbox0 = plane.inbox(0);
  ASSERT_EQ(inbox0.size(), 2u);
  EXPECT_EQ(inbox0[0].from, 0);
  EXPECT_EQ(inbox0[1].from, 1);

  EXPECT_TRUE(plane.inbox(1).empty());
  EXPECT_TRUE(plane.inbox(3).empty());

  const auto active = plane.activeDests();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 0);
  EXPECT_EQ(active[1], 2);
}

TEST(MessagePlane, RoundBoundaryReplacesInboxes) {
  MessagePlane plane(3);
  plane.stage(1, msg(MessageKind::MisActive, 0, 1));
  plane.deliver();
  EXPECT_EQ(plane.inbox(1).size(), 1u);
  plane.deliver();  // empty round
  EXPECT_TRUE(plane.inbox(1).empty());
  EXPECT_TRUE(plane.activeDests().empty());
  EXPECT_EQ(plane.rounds(), 2);
}

TEST(MessagePlane, ClearInboxesDropsDeliveriesButNotStaged) {
  MessagePlane plane(2);
  plane.stage(1, msg(MessageKind::MisActive, 0, 1));
  plane.deliver();
  plane.clearInboxes();
  EXPECT_TRUE(plane.inbox(1).empty());
  EXPECT_TRUE(plane.activeDests().empty());
  plane.stage(0, msg(MessageKind::MisActive, 1, 2));
  EXPECT_THROW(plane.clearInboxes(), CheckError);
}

TEST(MessagePlane, SteadyStateIsAllocationFree) {
  MessagePlane plane(8);
  Rng rng(11);
  const auto playRound = [&] {
    for (int m = 0; m < 100; ++m) {
      plane.stage(static_cast<std::int32_t>(rng.nextBounded(8)),
                  msg(MessageKind::MisActive,
                      static_cast<DemandId>(rng.nextBounded(8)),
                      static_cast<InstanceId>(rng.nextBounded(40))));
    }
    plane.deliver();
  };
  playRound();  // warmup grows the buffers...
  playRound();
  const std::int64_t warmupGrowths = plane.growthEvents();
  EXPECT_GT(warmupGrowths, 0);
  for (int r = 0; r < 50; ++r) {
    playRound();  // ...steady state never does
  }
  EXPECT_EQ(plane.growthEvents(), warmupGrowths);
  EXPECT_LE(plane.lastGrowthRound(), 1);
  EXPECT_EQ(plane.rounds(), 52);
}

TEST(MessagePlane, ParallelSegmentSortMatchesSerial) {
  ParallelRunner runner(4);
  MessagePlane parallel(16);
  MessagePlane serial(16);
  parallel.attachRunner(&runner);
  Rng rng(7);
  for (int m = 0; m < 600; ++m) {
    const auto dest = static_cast<std::int32_t>(rng.nextBounded(16));
    const Message message =
        msg(m % 3 == 0 ? MessageKind::DualRaise : MessageKind::MisActive,
            static_cast<DemandId>(rng.nextBounded(16)),
            static_cast<InstanceId>(rng.nextBounded(64)), rng.nextDouble());
    parallel.stage(dest, message);
    serial.stage(dest, message);
  }
  parallel.deliver();
  serial.deliver();
  for (std::int32_t p = 0; p < 16; ++p) {
    const auto a = parallel.inbox(p);
    const auto b = serial.inbox(p);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_FALSE(canonicalMessageLess(a[i], b[i]));
      EXPECT_FALSE(canonicalMessageLess(b[i], a[i]));
    }
  }
}

TEST(MessagePlane, ParallelFanoutMatchesSerialStaging) {
  // The deferred broadcast fan-out (stageFanout) must deliver exactly
  // what the serial per-neighbour stage() loop delivers — at any thread
  // count, and mixed with direct stage() rows in the same round.
  ParallelRunner runner(4);
  MessagePlane parallel(12);
  MessagePlane serial(12);
  parallel.attachRunner(&runner);
  Rng rng(13);
  std::vector<std::vector<std::int32_t>> destLists;
  for (int f = 0; f < 40; ++f) {
    std::vector<std::int32_t> dests;
    for (std::int32_t d = 0; d < 12; ++d) {
      if (rng.nextBool(0.4)) dests.push_back(d);
    }
    destLists.push_back(std::move(dests));
  }
  for (int round = 0; round < 3; ++round) {
    for (std::size_t f = 0; f < destLists.size(); ++f) {
      const Message message =
          msg(f % 2 == 0 ? MessageKind::MisActive : MessageKind::DualRaise,
              static_cast<DemandId>(f % 12),
              static_cast<InstanceId>(rng.nextBounded(64)),
              rng.nextDouble());
      parallel.stageFanout(message, destLists[f]);
      for (const std::int32_t d : destLists[f]) {
        serial.stage(d, message);
      }
      if (f % 7 == 0) {  // direct rows interleaved with fan-outs
        const Message direct = msg(MessageKind::Accept, 3, 5);
        parallel.stage(4, direct);
        serial.stage(4, direct);
      }
    }
    EXPECT_EQ(parallel.stagedCount(), serial.stagedCount());
    EXPECT_TRUE(parallel.hasStaged());
    parallel.deliver();
    serial.deliver();
    ASSERT_EQ(parallel.deliveredCount(), serial.deliveredCount());
    for (std::int32_t p = 0; p < 12; ++p) {
      const auto a = parallel.inbox(p);
      const auto b = serial.inbox(p);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].instance, b[i].instance);
        EXPECT_EQ(a[i].value, b[i].value);
      }
    }
  }
  // Queued fan-outs guard the silent-round contract like staged rows.
  parallel.stageFanout(msg(MessageKind::MisActive, 0, 1), destLists[0]);
  if (!destLists[0].empty()) {
    EXPECT_THROW(parallel.clearInboxes(), CheckError);
    parallel.deliver();
  }
}

// ---- ParallelRunner units ----

TEST(ParallelRunner, PlanCoversRangeExactlyOnce) {
  ParallelRunner runner(3);
  for (const std::int64_t count : {0, 1, 15, 16, 17, 1000, 4097}) {
    const ParallelRunner::ShardPlan plan = runner.plan(count);
    std::int64_t covered = 0;
    for (std::int32_t s = 0; s < plan.numShards; ++s) {
      EXPECT_EQ(plan.begin(s), covered);
      EXPECT_LE(plan.end(s), count);
      covered = plan.end(s);
    }
    EXPECT_EQ(covered, count);
  }
}

TEST(ParallelRunner, WeightedPlanCoversRangeExactlyOnce) {
  ParallelRunner runner(4);
  // Heavily skewed weights: one hot item dominates, plus zero/negative
  // weights (clamped to 1) and a long uniform tail.
  std::vector<std::int64_t> weights;
  for (std::int64_t i = 0; i < 1000; ++i) {
    weights.push_back(i == 17 ? 50'000 : (i % 7 == 0 ? 0 : 3));
  }
  ParallelRunner::ShardPlan plan;
  runner.planWeighted(weights, plan);
  ASSERT_GT(plan.numShards, 1);
  std::int64_t covered = 0;
  for (std::int32_t s = 0; s < plan.numShards; ++s) {
    EXPECT_EQ(plan.begin(s), covered);
    EXPECT_GT(plan.end(s), plan.begin(s)) << "no empty shards";
    covered = plan.end(s);
  }
  EXPECT_EQ(covered, static_cast<std::int64_t>(weights.size()));

  // Deterministic: same weights, same bounds (plan reuse grows nothing).
  ParallelRunner::ShardPlan replay;
  runner.planWeighted(weights, replay);
  EXPECT_EQ(replay.bounds, plan.bounds);

  // The dominating item is isolated away from the uniform tail: the
  // shard holding item 17 stays narrow while total shards track the
  // target parallelism.
  for (std::int32_t s = 0; s < plan.numShards; ++s) {
    if (plan.begin(s) <= 17 && 17 < plan.end(s)) {
      EXPECT_LE(plan.end(s) - plan.begin(s), 64)
          << "hot item must not drag a wide shard behind it";
    }
  }

  // Empty input: zero shards, nothing runs.
  runner.planWeighted(std::span<const std::int64_t>{}, plan);
  EXPECT_EQ(plan.numShards, 0);
  std::atomic<std::int32_t> ran{0};
  runner.forShards(plan, [&](std::int32_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelRunner, WeightedForShardsRunsEveryItemExactlyOnce) {
  ParallelRunner runner(8);
  std::vector<std::int64_t> weights(3000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<std::int64_t>((i * 2654435761u) % 97);
  }
  ParallelRunner::ShardPlan plan;
  runner.planWeighted(weights, plan);
  ASSERT_GT(plan.numShards, 1);
  std::vector<std::atomic<std::int32_t>> hits(weights.size());
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (auto& h : hits) h.store(0);
    runner.forShards(plan, [&](std::int32_t shard) {
      for (std::int64_t i = plan.begin(shard); i < plan.end(shard); ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
  // The steal/claim tallies stay coherent: every shard was claimed by
  // someone, and steals never exceed claims.
  EXPECT_GT(runner.claims(), 0);
  EXPECT_LE(runner.steals(), runner.claims());
}

TEST(ParallelRunner, ForShardsRunsEveryShardExactlyOnce) {
  ParallelRunner runner(8);
  const ParallelRunner::ShardPlan plan = runner.plan(5000);
  ASSERT_GT(plan.numShards, 1);
  std::vector<std::atomic<std::int32_t>> hits(
      static_cast<std::size_t>(plan.numShards));
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (auto& h : hits) h.store(0);
    runner.forShards(plan, [&](std::int32_t shard) {
      hits[static_cast<std::size_t>(shard)].fetch_add(1);
    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelRunner, PropagatesShardExceptions) {
  ParallelRunner runner(4);
  const ParallelRunner::ShardPlan plan = runner.plan(640);
  EXPECT_THROW(runner.forShards(plan,
                                [&](std::int32_t shard) {
                                  if (shard == plan.numShards - 1) {
                                    throw CheckError("shard failure");
                                  }
                                }),
               CheckError);
  // The pool survives and runs the next section normally.
  std::atomic<std::int32_t> ran{0};
  runner.forShards(plan, [&](std::int32_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), plan.numShards);
}

}  // namespace
}  // namespace treesched
