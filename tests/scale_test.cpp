// Scale smoke tests: moderately large instances through every code path,
// asserting the structural invariants still hold and nothing degenerates
// (these sizes are the benchmark operating range; the point is that the
// invariants checked exhaustively on small inputs keep holding here).
#include <gtest/gtest.h>

#include <cmath>

#include "algo/line_solvers.hpp"
#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

TEST(Scale, UnitTreeFiveHundredDemands) {
  TreeScenarioConfig cfg;
  cfg.seed = 1001;
  cfg.numVertices = 200;
  cfg.numNetworks = 4;
  cfg.demands.numDemands = 500;
  cfg.demands.accessProbability = 0.6;
  cfg.demands.profitMax = 50.0;
  const TreeProblem problem = makeTreeScenario(cfg);

  const TreeSolveResult r = solveUnitTree(problem);
  EXPECT_EQ(checkAssignments(problem, r.assignments), "");
  EXPECT_GE(r.stats.lambdaMeasured, r.stats.lambdaTarget - 1e-9);
  EXPECT_LE(r.stats.delta, 6);
  EXPECT_GE(r.dualUpperBound, r.profit - 1e-9);
}

TEST(Scale, ArbitraryTreeMixedHeights) {
  TreeScenarioConfig cfg;
  cfg.seed = 1002;
  cfg.numVertices = 128;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 300;
  cfg.demands.heights = HeightMode::Mixed;
  cfg.demands.hmin = 0.25;
  cfg.demands.accessProbability = 0.6;
  const TreeProblem problem = makeTreeScenario(cfg);

  const ArbitraryTreeResult r = solveArbitraryTree(problem);
  EXPECT_EQ(checkAssignments(problem, r.assignments), "");
  EXPECT_GE(r.profit, std::max(r.wideProfit, r.narrowProfit) - 1e-9);
  EXPECT_GE(r.dualUpperBound, r.profit - 1e-9);
}

TEST(Scale, LineWithWindowsManyInstances) {
  LineScenarioConfig cfg;
  cfg.seed = 1003;
  cfg.numSlots = 256;
  cfg.numResources = 3;
  cfg.demands.numDemands = 200;
  cfg.demands.processingMax = 16;
  cfg.demands.windowSlack = 0.5;
  cfg.demands.accessProbability = 0.6;
  const LineProblem problem = makeLineScenario(cfg);

  const InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
  EXPECT_GT(u.numInstances(), 1000) << "windows should multiply instances";

  const LineSolveResult r = solveUnitLine(problem);
  EXPECT_EQ(checkAssignments(problem, r.assignments), "");
  EXPECT_LE(r.stats.delta, 3);
  EXPECT_GE(r.stats.lambdaMeasured, r.stats.lambdaTarget - 1e-9);
}

TEST(Scale, SequentialHandlesLargeInstanceCounts) {
  TreeScenarioConfig cfg;
  cfg.seed = 1004;
  cfg.numVertices = 256;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 600;
  cfg.demands.accessProbability = 0.5;
  const TreeProblem problem = makeTreeScenario(cfg);

  const SequentialTreeResult r = solveSequentialTree(problem);
  EXPECT_EQ(checkAssignments(problem, r.assignments), "");
  EXPECT_LE(r.delta, 2);
  EXPECT_GT(r.iterations, 0);
}

TEST(Scale, RoundGrowthStaysPolylog) {
  // Doubling n four times must not blow up MIS rounds super-polylog:
  // compare against c * lg(n)^2 * lg(pmax/pmin) with a generous constant.
  for (const std::int32_t n : {64, 128, 256}) {
    TreeScenarioConfig cfg;
    cfg.seed = 1005 + static_cast<std::uint64_t>(n);
    cfg.numVertices = n;
    cfg.numNetworks = 3;
    cfg.demands.numDemands = 2 * n;
    cfg.demands.accessProbability = 0.6;
    const TreeProblem problem = makeTreeScenario(cfg);
    const TreeSolveResult r = solveUnitTree(problem);
    const double lg = std::log2(static_cast<double>(n));
    EXPECT_LE(r.stats.misRounds, 40.0 * lg * lg)
        << "MIS rounds super-polylogarithmic at n=" << n;
  }
}

}  // namespace
}  // namespace treesched
