#include <gtest/gtest.h>

#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "exact/greedy.hpp"
#include "exact/local_search.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

InstanceUniverse mediumUniverse(std::uint64_t seed,
                                HeightMode heights = HeightMode::Unit) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = 20;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 24;
  cfg.demands.heights = heights;
  cfg.demands.hmin = 0.2;
  cfg.demands.accessProbability = 0.7;
  return InstanceUniverse::fromTreeProblem(makeTreeScenario(cfg));
}

TEST(LocalSearch, NeverDegradesAndStaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const InstanceUniverse u = mediumUniverse(seed);
    const GreedyResult start = greedyByProfit(u);
    const LocalSearchResult improved = improveSolution(u, start.solution);
    requireFeasible(u, improved.solution);
    EXPECT_GE(improved.profit, start.profit - 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearch, FillsEmptySolution) {
  const InstanceUniverse u = mediumUniverse(2);
  const LocalSearchResult result = improveSolution(u, Solution{});
  EXPECT_GT(result.profit, 0);
  EXPECT_GT(result.addMoves, 0);
  requireFeasible(u, result.solution);
}

TEST(LocalSearch, IdempotentAtLocalOptimum) {
  const InstanceUniverse u = mediumUniverse(3);
  const LocalSearchResult once = improveSolution(u, Solution{});
  const LocalSearchResult twice = improveSolution(u, once.solution);
  EXPECT_DOUBLE_EQ(once.profit, twice.profit);
  EXPECT_EQ(once.solution.instances, twice.solution.instances);
  EXPECT_EQ(twice.swapMoves, 0);
}

TEST(LocalSearch, SwapEscapesGreedyTrap) {
  // Crafted trap: one fat demand blocks two thin ones worth more together.
  // Path 0-1-2-3-4; demand A spans everything (profit 3); demands B
  // (0->2, profit 2) and C (2->4, profit 2) fit together for 4.
  TreeProblem problem;
  problem.numVertices = 5;
  problem.networks.push_back(makePathTree(0, 5));
  auto add = [&](VertexId u, VertexId v, double profit) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = u;
    d.v = v;
    d.profit = profit;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  };
  add(0, 4, 3.0);
  add(0, 2, 2.0);
  add(2, 4, 2.0);
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);

  Solution trapped;
  trapped.instances = {0};  // the fat demand
  const LocalSearchResult result = improveSolution(u, trapped);
  EXPECT_DOUBLE_EQ(result.profit, 4.0) << "swap must trade A for B+C";
  EXPECT_GE(result.swapMoves, 1);
}

TEST(LocalSearch, ReachesOptimumOnSmallInstances) {
  int optimalCount = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TreeScenarioConfig cfg;
    cfg.seed = seed + 40;
    cfg.numVertices = 10;
    cfg.numNetworks = 2;
    cfg.demands.numDemands = 8;
    const TreeProblem problem = makeTreeScenario(cfg);
    const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    ASSERT_TRUE(exact.provedOptimal);
    const LocalSearchResult ls = improveSolution(u, Solution{});
    EXPECT_LE(ls.profit, exact.profit + 1e-9);
    if (ls.profit >= exact.profit - 1e-9) ++optimalCount;
  }
  // Local search is a heuristic; it should still hit the optimum often on
  // tiny instances.
  EXPECT_GE(optimalCount, 5);
}

TEST(LocalSearch, ImprovesDistributedSolverOutput) {
  TreeScenarioConfig cfg;
  cfg.seed = 55;
  cfg.numVertices = 24;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 40;
  const TreeProblem problem = makeTreeScenario(cfg);
  const TreeSolveResult solver = solveUnitTree(problem);

  // Rebuild the solver's solution at universe level.
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution sol;
  for (const TreeAssignment& a : solver.assignments) {
    for (const InstanceId i : u.instancesOfDemand(a.demand)) {
      if (u.instance(i).network == a.network) {
        sol.instances.push_back(i);
      }
    }
  }
  const LocalSearchResult improved = improveSolution(u, sol);
  EXPECT_GE(improved.profit, solver.profit - 1e-9);
  requireFeasible(u, improved.solution);
  // The theoretical guarantee carries over: improved profit still bounds
  // OPT via the solver's certificate.
  EXPECT_GE(improved.profit * solver.certifiedBound,
            solver.profit * solver.certifiedBound - 1e-9);
}

TEST(LocalSearch, WorksWithFractionalHeights) {
  const InstanceUniverse u = mediumUniverse(6, HeightMode::Mixed);
  const LocalSearchResult result = improveSolution(u, Solution{});
  requireFeasible(u, result.solution);
  EXPECT_GT(result.profit, 0);
}

TEST(LocalSearch, PassLimitRespected) {
  const InstanceUniverse u = mediumUniverse(7);
  const LocalSearchResult result = improveSolution(u, Solution{}, 1);
  EXPECT_EQ(result.passes, 1);
  requireFeasible(u, result.solution);
}

}  // namespace
}  // namespace treesched
