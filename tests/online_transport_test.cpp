// Acceptance gate of the mutable-topology transport refactor: the online
// incremental re-solver speaks only Transport + MutableTopology
// (net/transport.hpp), so the SAME churn run must be bit-identical over
// the synchronous bus, the asynchronous lossy wire (AlphaSynchronizer on
// AsyncNetwork, any latency/drop config) and the live-sharded wire —
// extending the PR-2/PR-3 equivalence chain to churn workloads.
//
// The sweep drives 5 seeds x {tree, line} x {poisson, flash_crowd,
// targeted_burst} traces through the churn engine over all transports
// (lossy + heavy-tail wires, 1 and 8 threads) and requires every epoch
// outcome — solution, profit, duals, lambda, raises, rounds, messages,
// SLA — to equal the SimNetwork reference exactly; only the wire
// accounting (virtual time, transmissions, drops, processor load) may
// differ. Plus unit coverage of the MutableTopology edge cases, the
// live shard placement and the targeted-burst arrival process.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "gen/scenario.hpp"
#include "net/live_transport.hpp"
#include "net/transport.hpp"
#include "online/churn_engine.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {3, 14, 25, 36, 47};

// Churn sweep scale: small enough that the event-driven wires stay fast,
// large enough (12 networks) that warm partial-region epochs occur.
constexpr std::int32_t kPoolDemands = 96;
constexpr double kHorizon = 64.0;
constexpr double kEpochLength = 8.0;

ArrivalConfig sweepArrivals(ArrivalModel model, std::uint64_t seed) {
  ArrivalConfig config;
  config.model = model;
  config.seed = seed ^ 0x7a11ULL;
  config.horizon = kHorizon;
  config.meanLifetime = 24.0;
  config.burstCenter = 0.3;
  config.burstWidth = 0.08;
  config.burstFraction = 0.5;
  config.targetNetworkCount = 3;
  config.targetFraction = 0.8;
  config.correlatedLifetime = 0.3;
  return config;
}

/// The lossy wire: uniform latency, 20% loss — retransmissions everywhere.
AsyncConfig lossyWire(std::uint64_t seed) {
  AsyncConfig net;
  net.seed = seed ^ 0x10a4ULL;
  net.link.latency.model = LatencyModel::Uniform;
  net.link.latency.base = 1.0;
  net.link.latency.spread = 2.0;
  net.link.dropProbability = 0.2;
  net.link.retransmitTimeout = 8.0;
  return net;
}

/// The heavy-tail wire: Pareto latencies + loss, auto-derived timeout.
AsyncConfig heavyTailWire(std::uint64_t seed) {
  AsyncConfig net;
  net.seed = seed ^ 0x43a7ULL;
  net.link.latency.model = LatencyModel::HeavyTail;
  net.link.latency.base = 1.0;
  net.link.latency.tailShape = 1.5;
  net.link.latency.tailCap = 32.0;
  net.link.dropProbability = 0.1;
  net.link.retransmitTimeout = 0.0;  // per-link round-trip bound
  return net;
}

ChurnEngineConfig engineConfig(std::uint64_t seed, std::int32_t threads,
                               const LiveTransportConfig& transport) {
  ChurnEngineConfig config;
  config.epochLength = kEpochLength;
  config.solver.seed = seed * 31 + 5;
  config.solver.epsilon = 0.35;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  config.solver.threads = threads;
  config.transport = transport;
  return config;
}

void expectRunsIdentical(const ChurnRunResult& reference,
                         const ChurnRunResult& run, const char* label) {
  ASSERT_EQ(reference.epochs.size(), run.epochs.size()) << label;
  for (std::size_t k = 0; k < reference.epochs.size(); ++k) {
    const EpochOutcome& a = reference.epochs[k];
    const EpochOutcome& b = run.epochs[k];
    ASSERT_EQ(a.solution.instances, b.solution.instances)
        << label << " epoch " << k;
    EXPECT_EQ(a.profit, b.profit) << label << " epoch " << k;
    EXPECT_EQ(a.dualObjective, b.dualObjective) << label << " epoch " << k;
    EXPECT_EQ(a.lambdaMeasured, b.lambdaMeasured) << label << " epoch " << k;
    EXPECT_EQ(a.raises, b.raises) << label << " epoch " << k;
    EXPECT_EQ(a.rounds, b.rounds) << label << " epoch " << k;
    EXPECT_EQ(a.messages, b.messages) << label << " epoch " << k;
    EXPECT_EQ(a.affectedDemands, b.affectedDemands) << label << " epoch " << k;
    EXPECT_EQ(a.fullResolve, b.fullResolve) << label << " epoch " << k;
    EXPECT_EQ(a.newlyAdmittedDemands, b.newlyAdmittedDemands)
        << label << " epoch " << k;
  }
  EXPECT_EQ(reference.finalSolution.instances, run.finalSolution.instances)
      << label;
  EXPECT_EQ(reference.finalProfit, run.finalProfit) << label;
  EXPECT_EQ(reference.meanResolveFraction, run.meanResolveFraction) << label;
  EXPECT_EQ(reference.sla.admittedDemands, run.sla.admittedDemands) << label;
  EXPECT_EQ(reference.sla.departedUnadmitted, run.sla.departedUnadmitted)
      << label;
  EXPECT_EQ(reference.sla.meanLatencyEpochs, run.sla.meanLatencyEpochs)
      << label;
  EXPECT_EQ(reference.sla.maxLatencyEpochs, run.sla.maxLatencyEpochs)
      << label;
}

/// The shared sweep: reference over the synchronous bus, then the async
/// lossy wire (1 thread), the heavy-tail wire (8 threads) and the
/// live-sharded lossy wire (8 threads) — all bit-identical. Each run
/// grows its own dynamic universe from scratch (`makeUniverse`), so the
/// comparison also covers the incremental build's determinism.
void verifyTransportsAgree(
    const std::function<DynamicUniverse()>& makeUniverse,
    const ChurnTrace& trace, std::uint64_t seed) {
  LiveTransportConfig sync;
  DynamicUniverse syncUniverse = makeUniverse();
  const ChurnRunResult reference =
      runChurnOverTrace(syncUniverse, trace, engineConfig(seed, 1, sync));
  ASSERT_FALSE(reference.epochs.empty());
  EXPECT_EQ(reference.network.transmissions, 0);
  ASSERT_GT(reference.totalMessages, 0);

  LiveTransportConfig lossy;
  lossy.kind = LiveTransportKind::Async;
  lossy.async = lossyWire(seed);
  DynamicUniverse lossyUniverse = makeUniverse();
  const ChurnRunResult overLossy =
      runChurnOverTrace(lossyUniverse, trace, engineConfig(seed, 1, lossy));
  expectRunsIdentical(reference, overLossy, "async-lossy");
  EXPECT_GT(overLossy.network.transmissions, 0);
  EXPECT_GT(overLossy.network.drops, 0);
  EXPECT_GT(overLossy.network.virtualTime, 0.0);

  LiveTransportConfig heavy;
  heavy.kind = LiveTransportKind::Async;
  heavy.async = heavyTailWire(seed);
  DynamicUniverse heavyUniverse = makeUniverse();
  const ChurnRunResult overHeavy =
      runChurnOverTrace(heavyUniverse, trace, engineConfig(seed, 8, heavy));
  expectRunsIdentical(reference, overHeavy, "async-heavy-tail");
  EXPECT_GT(overHeavy.network.transmissions, 0);

  LiveTransportConfig sharded;
  sharded.kind = LiveTransportKind::Sharded;
  sharded.async = lossyWire(seed ^ 0x5a5aULL);
  sharded.async.shardProcessors = 7;
  DynamicUniverse shardedUniverse = makeUniverse();
  const ChurnRunResult overSharded = runChurnOverTrace(
      shardedUniverse, trace, engineConfig(seed, 8, sharded));
  expectRunsIdentical(reference, overSharded, "sharded");
  // Demand-level delivery is transport-invariant; only the wire moves.
  EXPECT_EQ(overSharded.network.messages, reference.network.messages);
  EXPECT_GT(overSharded.network.transmissions, 0);
  // Locality placement keeps intra-shard chatter off the wire: fewer
  // payload transmissions than the one-processor-per-demand wire needs
  // (both wires retransmit, so compare totals minus control via the
  // conservative payload proxy: sharded sends once per remote shard).
  EXPECT_LT(overSharded.network.transmissions,
            overLossy.network.transmissions);
}

class OnlineTransportSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineTransportSweep, TreeEpochsIdenticalAcrossTransports) {
  const std::uint64_t seed = GetParam();
  const ChurnTreeScenario scenario = makeHotspotTree50k(seed, kPoolDemands);
  for (const ArrivalModel model :
       {ArrivalModel::Poisson, ArrivalModel::FlashCrowd,
        ArrivalModel::TargetedBurst}) {
    SCOPED_TRACE(arrivalModelName(model));
    verifyTransportsAgree(
        [&scenario] { return makeDynamicTreeUniverse(scenario.pool); },
        generateChurnTrace(sweepArrivals(model, seed), scenario.pool.access),
        seed);
  }
}

TEST_P(OnlineTransportSweep, LineEpochsIdenticalAcrossTransports) {
  const std::uint64_t seed = GetParam();
  const ChurnLineScenario scenario =
      makeDiurnalMetroLine100k(seed, kPoolDemands);
  for (const ArrivalModel model :
       {ArrivalModel::Poisson, ArrivalModel::FlashCrowd,
        ArrivalModel::TargetedBurst}) {
    SCOPED_TRACE(arrivalModelName(model));
    verifyTransportsAgree(
        [&scenario] { return makeDynamicLineUniverse(scenario.pool); },
        generateChurnTrace(sweepArrivals(model, seed), scenario.pool.access),
        seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineTransportSweep,
                         ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

// ---- MutableTopology edge cases (every mutable transport) ----

std::vector<std::vector<std::int32_t>> edgeCaseAccess() {
  // Demands 0-1 share network 0, demands 2-3 share network 1, demand 4
  // accesses nothing (always isolated).
  return {{0}, {0}, {1}, {1}, {}};
}

void exerciseTopologyEdgeCases(Transport& transport, const char* label) {
  MutableTopology& topo = requireMutableTopology(transport);
  ASSERT_EQ(topo.numDemands(), 5) << label;

  // Disconnect of a never-connected demand: a no-op, not an error.
  topo.disconnectDemand(3);
  validateLiveTopology(topo);
  for (std::int32_t d = 0; d < topo.numDemands(); ++d) {
    EXPECT_TRUE(topo.currentNeighbors(d).empty()) << label;
  }

  // Connect both pairs; the current-adjacency query sees every edge from
  // both sides.
  topo.connectDemand(0, std::vector<std::int32_t>{1});
  validateLiveTopology(topo);
  topo.connectDemand(2, std::vector<std::int32_t>{3});
  validateLiveTopology(topo);
  ASSERT_EQ(topo.currentNeighbors(1).size(), 1u) << label;
  EXPECT_EQ(topo.currentNeighbors(1)[0], 0) << label;
  ASSERT_EQ(topo.currentNeighbors(3).size(), 1u) << label;
  EXPECT_EQ(topo.currentNeighbors(3)[0], 2) << label;

  // Malformed connects are rejected without touching the live graph.
  EXPECT_THROW(topo.connectDemand(0, std::vector<std::int32_t>{2}),
               CheckError)
      << label;  // already connected
  EXPECT_THROW(topo.connectDemand(4, std::vector<std::int32_t>{3, 2}),
               CheckError)
      << label;  // unsorted
  EXPECT_THROW(topo.connectDemand(4, std::vector<std::int32_t>{4}),
               CheckError)
      << label;  // self loop
  validateLiveTopology(topo);

  // Departure then re-arrival with a different neighbour set.
  topo.disconnectDemand(0);
  validateLiveTopology(topo);
  EXPECT_TRUE(topo.currentNeighbors(0).empty()) << label;
  EXPECT_TRUE(topo.currentNeighbors(1).empty()) << label;
  topo.connectDemand(1, std::vector<std::int32_t>{0});
  validateLiveTopology(topo);
  ASSERT_EQ(topo.currentNeighbors(0).size(), 1u) << label;
  EXPECT_EQ(topo.currentNeighbors(0)[0], 1) << label;

  // A second disconnect of an already-departed demand stays a no-op.
  topo.disconnectDemand(0);
  topo.disconnectDemand(0);
  validateLiveTopology(topo);

  // The mutated graph still carries traffic.
  transport.broadcast({MessageKind::MisActive, 2, 7, 0.5});
  transport.endRound();
  ASSERT_EQ(transport.inbox(3).size(), 1u) << label;
  EXPECT_EQ(transport.inbox(3)[0].instance, 7) << label;
  transport.endSilentRounds(1);
}

TEST(MutableTopologyEdgeCases, AllLiveTransports) {
  for (const LiveTransportKind kind :
       {LiveTransportKind::SyncBus, LiveTransportKind::Async,
        LiveTransportKind::Sharded}) {
    LiveTransportConfig config;
    config.kind = kind;
    config.async = lossyWire(99);
    // Sharded: 4 processors over at most 4 placed demands — at least one
    // shard hosts nothing while the mutations run.
    config.async.shardProcessors = 4;
    const auto transport = makeLiveTransport(5, edgeCaseAccess(), config);
    exerciseTopologyEdgeCases(*transport, liveTransportKindName(kind));
  }
}

TEST(MutableTopologyEdgeCases, ShardedMutationOnZeroDemandShards) {
  // All demands share one home network, so the live locality placement
  // anchors every arrival to ONE processor: the other three shards stay
  // empty through every mutation.
  const std::vector<std::vector<std::int32_t>> access = {
      {0}, {0}, {0}, {0}};
  LiveTransportConfig config;
  config.kind = LiveTransportKind::Sharded;
  config.async = lossyWire(7);
  config.async.shardProcessors = 4;
  const auto transport = makeLiveTransport(4, access, config);
  auto* synchronizer = dynamic_cast<AlphaSynchronizer*>(transport.get());
  ASSERT_NE(synchronizer, nullptr);
  MutableTopology& topo = requireMutableTopology(*transport);

  topo.connectDemand(0, std::vector<std::int32_t>{});
  topo.connectDemand(1, std::vector<std::int32_t>{0});
  topo.connectDemand(2, std::vector<std::int32_t>{0, 1});
  validateLiveTopology(topo);
  const ShardPlacement& placement = synchronizer->placement();
  const std::int32_t home = placement.processorOfDemand[0];
  EXPECT_EQ(placement.processorOfDemand[1], home);
  EXPECT_EQ(placement.processorOfDemand[2], home);
  EXPECT_EQ(placement.liveDemandCount(home), 3);
  std::int32_t emptyShards = 0;
  for (std::int32_t p = 0; p < placement.numProcessors; ++p) {
    if (placement.liveDemandCount(p) == 0) ++emptyShards;
  }
  EXPECT_EQ(emptyShards, 3);

  // Everything on one shard: rounds run without touching the wire.
  transport->broadcast({MessageKind::MisActive, 2, 1, 0.25});
  transport->endRound();
  EXPECT_EQ(transport->inbox(0).size(), 1u);
  EXPECT_EQ(transport->inbox(1).size(), 1u);
  EXPECT_EQ(transport->stats().transmissions, 0);

  // Departures tombstone; the last departure releases the anchor, so a
  // re-arrival may be placed afresh — still a valid topology.
  topo.disconnectDemand(2);
  topo.disconnectDemand(1);
  topo.disconnectDemand(0);
  validateLiveTopology(topo);
  EXPECT_EQ(placement.liveDemandCount(home), 0);
  topo.connectDemand(3, std::vector<std::int32_t>{});
  validateLiveTopology(topo);
  EXPECT_TRUE(placement.isPlaced(3));
}

// ---- requireMutableTopology on an immutable transport ----

class FixedTopologyTransport : public Transport {
 public:
  std::int32_t numProcessors() const override { return 1; }
  std::span<const std::int32_t> neighbors(std::int32_t) const override {
    return {};
  }
  void broadcast(const Message&) override {}
  void endRound() override {}
  void endSilentRounds(std::int64_t) override {}
  std::span<const Message> inbox(std::int32_t) const override { return {}; }
  const NetworkStats& stats() const override { return stats_; }

 private:
  NetworkStats stats_;
};

TEST(MutableTopologyEdgeCases, ImmutableTransportIsRejected) {
  FixedTopologyTransport fixed;
  EXPECT_EQ(mutableTopologyOf(fixed), nullptr);
  EXPECT_THROW(requireMutableTopology(fixed), CheckError);
}

// ---- Live shard placement ----

TEST(LiveShardPlacement, LocalityAnchorsTombstonesAndCompaction) {
  // Home networks: demands 0-2 -> net 0, 3-4 -> net 1, 5 -> net 2.
  const std::vector<std::vector<std::int32_t>> access = {
      {0}, {0, 1}, {0}, {1}, {1, 2}, {2}};
  ShardPlacement placement = ShardPlacement::livePool(access, 3);
  EXPECT_TRUE(placement.live);
  EXPECT_EQ(placement.numProcessors, 3);
  for (DemandId d = 0; d < 6; ++d) {
    EXPECT_FALSE(placement.isPlaced(d));
  }

  // Arrivals of one home network share its anchor processor.
  const std::int32_t p0 = placement.placeDemand(0);
  EXPECT_EQ(placement.placeDemand(1), p0);
  EXPECT_EQ(placement.placeDemand(2), p0);
  // A new network anchors to the least-loaded processor.
  const std::int32_t p1 = placement.placeDemand(3);
  EXPECT_NE(p1, p0);
  EXPECT_EQ(placement.placeDemand(4), p1);
  const std::int32_t p2 = placement.placeDemand(5);
  EXPECT_NE(p2, p0);
  EXPECT_NE(p2, p1);
  EXPECT_EQ(placement.liveDemandCount(p0), 3);

  // Departures tombstone in place; once tombstones outnumber the live
  // entries the hosted list compacts.
  placement.removeDemand(0);
  EXPECT_EQ(placement.tombstoneCount(p0), 1);
  EXPECT_EQ(placement.liveDemandCount(p0), 2);
  placement.removeDemand(1);
  EXPECT_EQ(placement.tombstoneCount(p0), 0);  // 2 tombstones > 1 live
  EXPECT_GE(placement.compactions, 1);
  EXPECT_EQ(placement.demandsOfProcessor[static_cast<std::size_t>(p0)],
            (std::vector<DemandId>{2}));

  // The anchor survives while any demand of the network is live, and is
  // released by the last departure: a re-arrival re-anchors afresh to
  // the then-least-loaded processor.
  placement.removeDemand(2);
  EXPECT_EQ(placement.liveDemandCount(p0), 0);
  const std::int32_t again = placement.placeDemand(0);
  EXPECT_EQ(again, p0);  // p0 is now the least-loaded processor
  EXPECT_EQ(placement.placeDemand(2), p0);

  // Double-place and double-remove are rejected.
  EXPECT_THROW(placement.placeDemand(0), CheckError);
  placement.removeDemand(0);
  EXPECT_THROW(placement.removeDemand(0), CheckError);
}

// ---- Targeted-burst arrival process ----

TEST(TargetedBurstArrivals, ConcentratesChurnOnTargetNetworks) {
  const ChurnTreeScenario scenario = makeHotspotTree50k(21, 240);
  const std::vector<std::int32_t> targets =
      targetedNetworks(scenario.arrivals, scenario.pool.access);
  ASSERT_EQ(static_cast<std::int32_t>(targets.size()),
            scenario.arrivals.targetNetworkCount);

  const ChurnTrace trace =
      generateChurnTrace(scenario.arrivals, scenario.pool.access);
  // Deterministic replay.
  const ChurnTrace replay =
      generateChurnTrace(scenario.arrivals, scenario.pool.access);
  ASSERT_EQ(trace.events.size(), replay.events.size());
  for (std::size_t e = 0; e < trace.events.size(); ++e) {
    EXPECT_EQ(trace.events[e].time, replay.events[e].time);
    EXPECT_EQ(trace.events[e].demand, replay.events[e].demand);
  }

  const auto homeOf = [&scenario](DemandId d) {
    return homeNetworkOf(scenario.pool.access[static_cast<std::size_t>(d)]);
  };
  const auto isTarget = [&targets](std::int32_t net) {
    return net >= 0 &&
           std::binary_search(targets.begin(), targets.end(), net);
  };

  // Targeted demands pile into the arrival burst window...
  const double begin = scenario.arrivals.horizon *
                       (scenario.arrivals.burstCenter -
                        0.5 * scenario.arrivals.burstWidth);
  const double end = scenario.arrivals.horizon *
                     (scenario.arrivals.burstCenter +
                      0.5 * scenario.arrivals.burstWidth);
  std::int32_t targetedDemands = 0;
  std::int32_t targetedInBurst = 0;
  std::vector<std::uint8_t> arrivedInBurst(240, 0);
  std::vector<double> memberDepartures;
  for (const ChurnEvent& event : trace.events) {
    if (!isTarget(homeOf(event.demand))) continue;
    if (event.arrival) {
      ++targetedDemands;
      if (event.time >= begin && event.time <= end) {
        ++targetedInBurst;
        arrivedInBurst[static_cast<std::size_t>(event.demand)] = 1;
      }
    } else if (arrivedInBurst[static_cast<std::size_t>(event.demand)] != 0) {
      memberDepartures.push_back(event.time);
    }
  }
  ASSERT_GT(targetedDemands, 10);
  EXPECT_GT(targetedInBurst * 2, targetedDemands)
      << "targetFraction 0.85 of targeted demands must hit the burst";

  // ...and the burst members' correlated departures land in one narrow
  // window: one shared lifetime draw, jittered only ±10% per demand, on
  // top of arrivals confined to the burst window.
  ASSERT_GT(static_cast<std::int32_t>(memberDepartures.size()), 5);
  const auto [minDep, maxDep] = std::minmax_element(
      memberDepartures.begin(), memberDepartures.end());
  EXPECT_LT(*maxDep - *minDep, 0.25 * scenario.arrivals.horizon)
      << "mass departure spread stays a small fraction of the horizon";

  // The plain overload cannot target (no access lists).
  EXPECT_THROW(generateChurnTrace(scenario.arrivals, 240), CheckError);
  // Non-targeted models produce identical traces through both overloads.
  ArrivalConfig poisson = scenario.arrivals;
  poisson.model = ArrivalModel::Poisson;
  const ChurnTrace plain = generateChurnTrace(poisson, 240);
  const ChurnTrace viaAccess =
      generateChurnTrace(poisson, scenario.pool.access);
  ASSERT_EQ(plain.events.size(), viaAccess.events.size());
  for (std::size_t e = 0; e < plain.events.size(); ++e) {
    EXPECT_EQ(plain.events[e].time, viaAccess.events[e].time);
    EXPECT_EQ(plain.events[e].demand, viaAccess.events[e].demand);
    EXPECT_EQ(plain.events[e].arrival, viaAccess.events[e].arrival);
  }
}

}  // namespace
}  // namespace treesched
