#include <gtest/gtest.h>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "gen/scenario.hpp"
#include "test_fixtures.hpp"

namespace treesched {
namespace {

using testing::paperExampleTree;

TreeProblem smallTreeProblem(std::uint64_t seed, std::int32_t n, std::int32_t m,
                             std::int32_t r, TreeShape shape) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = r;
  cfg.shape = shape;
  cfg.demands.numDemands = m;
  cfg.demands.accessProbability = 0.7;
  return makeTreeScenario(cfg);
}

// ---- Tree layering (Lemma 4.2 / 4.3) ----

TEST(TreeLayering, InterferencePropertyHolds) {
  const TreeProblem problem = smallTreeProblem(1, 24, 30, 3,
                                               TreeShape::UniformRandom);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result = buildTreeLayering(problem, universe);
  EXPECT_EQ(checkLayering(universe, result.layering), "");
}

TEST(TreeLayering, DeltaAtMostSixWithIdeal) {
  const TreeProblem problem = smallTreeProblem(2, 40, 60, 2,
                                               TreeShape::UniformRandom);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result = buildTreeLayering(problem, universe);
  EXPECT_LE(result.layering.maxCriticalSize, 6)
      << "Lemma 4.3: Delta = 2*(theta+1) <= 6 for the ideal decomposition";
}

TEST(TreeLayering, GroupCountLogarithmic) {
  const TreeProblem problem = smallTreeProblem(3, 128, 20, 1,
                                               TreeShape::UniformRandom);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result = buildTreeLayering(problem, universe);
  std::int32_t lg = 0;
  while ((1 << lg) < 128) ++lg;
  EXPECT_LE(result.layering.numGroups, 2 * lg + 1);
}

TEST(TreeLayering, RootFixingGivesDeltaFour) {
  // theta = 1 -> Delta <= 2*(1+1) = 4 (but depth may be large).
  const TreeProblem problem = smallTreeProblem(4, 32, 40, 2,
                                               TreeShape::UniformRandom);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result =
      buildTreeLayering(problem, universe, DecompositionKind::RootFixing);
  EXPECT_LE(result.layering.maxCriticalSize, 4);
  EXPECT_EQ(checkLayering(universe, result.layering), "");
}

TEST(TreeLayering, BalancingInterferenceHolds) {
  const TreeProblem problem = smallTreeProblem(5, 32, 40, 2,
                                               TreeShape::UniformRandom);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result =
      buildTreeLayering(problem, universe, DecompositionKind::Balancing);
  EXPECT_EQ(checkLayering(universe, result.layering), "");
}

// Property sweep across shapes and seeds: the interference property is the
// linchpin of the approximation proof, so verify it exhaustively.
struct LayeringCase {
  TreeShape shape;
  std::uint64_t seed;
  DecompositionKind kind;
};

class TreeLayeringPropertyTest
    : public ::testing::TestWithParam<LayeringCase> {};

TEST_P(TreeLayeringPropertyTest, InterferenceAndDeltaBounds) {
  const auto& param = GetParam();
  const TreeProblem problem = smallTreeProblem(param.seed, 20, 25, 2,
                                               param.shape);
  const InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult result =
      buildTreeLayering(problem, universe, param.kind);
  EXPECT_EQ(checkLayering(universe, result.layering), "");
  if (param.kind == DecompositionKind::Ideal) {
    EXPECT_LE(result.layering.maxCriticalSize, 6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, TreeLayeringPropertyTest,
    ::testing::Values(
        LayeringCase{TreeShape::UniformRandom, 11, DecompositionKind::Ideal},
        LayeringCase{TreeShape::UniformRandom, 12, DecompositionKind::Ideal},
        LayeringCase{TreeShape::UniformRandom, 13,
                     DecompositionKind::Balancing},
        LayeringCase{TreeShape::UniformRandom, 14,
                     DecompositionKind::RootFixing},
        LayeringCase{TreeShape::Path, 15, DecompositionKind::Ideal},
        LayeringCase{TreeShape::Star, 16, DecompositionKind::Ideal},
        LayeringCase{TreeShape::Caterpillar, 17, DecompositionKind::Ideal},
        LayeringCase{TreeShape::Spider, 18, DecompositionKind::Ideal},
        LayeringCase{TreeShape::BalancedBinary, 19, DecompositionKind::Ideal}),
    [](const ::testing::TestParamInfo<LayeringCase>& info) {
      return treeShapeName(info.param.shape) + "_s" +
             std::to_string(info.param.seed) + "_" +
             decompositionKindName(info.param.kind).substr(0, 4);
    });

// ---- Line layering (§7) ----

LineProblem smallLineProblem(std::uint64_t seed, double slack) {
  LineScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numSlots = 48;
  cfg.numResources = 2;
  cfg.demands.numDemands = 25;
  cfg.demands.processingMin = 1;
  cfg.demands.processingMax = 12;
  cfg.demands.windowSlack = slack;
  cfg.demands.accessProbability = 0.8;
  return makeLineScenario(cfg);
}

TEST(LineLayering, InterferencePropertyHolds) {
  const LineProblem problem = smallLineProblem(21, 0.0);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  EXPECT_EQ(checkLayering(universe, layering), "");
}

TEST(LineLayering, InterferenceWithWindows) {
  const LineProblem problem = smallLineProblem(22, 1.5);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  EXPECT_EQ(checkLayering(universe, layering), "");
}

TEST(LineLayering, DeltaAtMostThree) {
  const LineProblem problem = smallLineProblem(23, 1.0);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  EXPECT_LE(layering.maxCriticalSize, 3);
}

TEST(LineLayering, GroupCountMatchesLengthSpread) {
  const LineProblem problem = smallLineProblem(24, 0.0);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  // numGroups <= ceil(lg(Lmax/Lmin)) + 1.
  std::int32_t lg = 0;
  while ((1 << lg) < 12) ++lg;
  EXPECT_LE(layering.numGroups, lg + 1);
}

TEST(LineLayering, ShortInstancesComeFirst) {
  const LineProblem problem = smallLineProblem(25, 0.5);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  for (InstanceId a = 0; a < universe.numInstances(); ++a) {
    for (InstanceId b = 0; b < universe.numInstances(); ++b) {
      if (universe.instance(a).pathLength() * 2 <=
          universe.instance(b).pathLength()) {
        EXPECT_LT(layering.group[static_cast<std::size_t>(a)],
                  layering.group[static_cast<std::size_t>(b)]);
      }
    }
  }
}

TEST(LineLayering, SingleSlotInstances) {
  LineProblem problem;
  problem.numSlots = 4;
  problem.numResources = 1;
  problem.demands = {makeIntervalDemand(0, 0, 0, 1.0),
                     makeIntervalDemand(1, 0, 3, 2.0)};
  problem.access = fullLineAccess(2, 1);
  const InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  const Layering layering = buildLineLayering(universe);
  EXPECT_EQ(checkLayering(universe, layering), "");
  // One-slot instance: all three wings coincide.
  EXPECT_EQ(layering.critical(0).size(), 1u);
}

}  // namespace
}  // namespace treesched
