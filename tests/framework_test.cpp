#include <gtest/gtest.h>

#include <cmath>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"

namespace treesched {
namespace {

struct Ctx {
  TreeProblem problem;
  InstanceUniverse universe;
  Layering layering;
};

Ctx makeSetup(std::uint64_t seed, std::int32_t n, std::int32_t m,
                std::int32_t r, HeightMode heights = HeightMode::Unit) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = r;
  cfg.demands.numDemands = m;
  cfg.demands.heights = heights;
  cfg.demands.hmin = 0.2;
  cfg.demands.profitMax = 16.0;
  cfg.demands.accessProbability = 0.8;
  TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  Layering layering = buildTreeLayering(problem, universe).layering;
  return {std::move(problem), std::move(universe), std::move(layering)};
}

TEST(TwoPhase, SolutionIsFeasible) {
  Ctx s = makeSetup(1, 32, 40, 3);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  requireFeasible(s.universe, result.solution);
  EXPECT_GT(result.profit, 0);
}

TEST(TwoPhase, LambdaTargetAchieved) {
  Ctx s = makeSetup(2, 32, 50, 2);
  FrameworkConfig cfg;
  cfg.epsilon = 0.2;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  EXPECT_GE(result.stats.lambdaMeasured,
            result.stats.lambdaTarget - 1e-9)
      << "all instances must be (1-eps)-satisfied after phase 1";
  EXPECT_DOUBLE_EQ(result.stats.lambdaTarget, 0.8);
}

TEST(TwoPhase, Lemma31DualSolutionInequality) {
  // val(alpha, beta) <= (Delta + 1) * p(S) — the core of Lemma 3.1.
  Ctx s = makeSetup(3, 40, 60, 2);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  EXPECT_LE(result.dualObjective,
            (result.stats.delta + 1.0) * result.profit + 1e-6);
}

TEST(TwoPhase, DualUpperBoundDominatesSolution) {
  Ctx s = makeSetup(4, 32, 30, 2);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  EXPECT_GE(result.dualUpperBound, result.profit - 1e-9);
}

TEST(TwoPhase, DeterministicForSeed) {
  Ctx s1 = makeSetup(5, 24, 35, 2);
  Ctx s2 = makeSetup(5, 24, 35, 2);
  FrameworkConfig cfg;
  cfg.seed = 42;
  const TwoPhaseResult a = runTwoPhase(s1.universe, s1.layering, cfg);
  const TwoPhaseResult b = runTwoPhase(s2.universe, s2.layering, cfg);
  EXPECT_EQ(a.solution.instances, b.solution.instances);
  EXPECT_EQ(a.stack, b.stack);
  EXPECT_DOUBLE_EQ(a.profit, b.profit);
}

TEST(TwoPhase, StackEntriesAreIndependentSets) {
  Ctx s = makeSetup(6, 24, 40, 2);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  for (const auto& entry : result.stack) {
    for (std::size_t i = 0; i < entry.size(); ++i) {
      for (std::size_t j = i + 1; j < entry.size(); ++j) {
        EXPECT_FALSE(s.universe.conflicting(entry[i], entry[j]));
      }
    }
  }
}

TEST(TwoPhase, EverySolutionInstanceWasRaised) {
  Ctx s = makeSetup(7, 24, 30, 2);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  std::vector<bool> raised(static_cast<std::size_t>(s.universe.numInstances()),
                           false);
  for (const auto& entry : result.stack) {
    for (const InstanceId i : entry) {
      raised[static_cast<std::size_t>(i)] = true;
    }
  }
  for (const InstanceId i : result.solution.instances) {
    EXPECT_TRUE(raised[static_cast<std::size_t>(i)]);
  }
}

TEST(TwoPhase, ThresholdPolicyLambda) {
  Ctx s = makeSetup(8, 24, 30, 2);
  FrameworkConfig cfg;
  cfg.schedule = SchedulePolicy::Threshold;
  cfg.epsilon = 0.5;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  EXPECT_NEAR(result.stats.lambdaTarget, 1.0 / 5.5, 1e-12);
  EXPECT_GE(result.stats.lambdaMeasured, result.stats.lambdaTarget - 1e-9);
  requireFeasible(s.universe, result.solution);
}

TEST(TwoPhase, StagedBeatsThresholdOnLambda) {
  Ctx s = makeSetup(9, 32, 50, 2);
  FrameworkConfig staged;
  staged.epsilon = 0.1;
  FrameworkConfig threshold;
  threshold.schedule = SchedulePolicy::Threshold;
  threshold.epsilon = 0.1;
  const TwoPhaseResult a = runTwoPhase(s.universe, s.layering, staged);
  const TwoPhaseResult b = runTwoPhase(s.universe, s.layering, threshold);
  EXPECT_GT(a.stats.lambdaMeasured, b.stats.lambdaTarget);
  // The paper's headline: staged lambda ~ 1-eps vs threshold ~ 1/(5+eps),
  // a factor (1-eps)(5+eps) -> 5 as eps -> 0 (4.59 at eps = 0.1).
  EXPECT_GE(a.stats.lambdaTarget, 4.5 * b.stats.lambdaTarget);
}

TEST(TwoPhase, NarrowRuleFeasibleAndBounded) {
  Ctx s = makeSetup(10, 24, 40, 2, HeightMode::Narrow);
  FrameworkConfig cfg;
  cfg.raise = RaiseRule::Narrow;
  cfg.hmin = 0.2;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  requireFeasible(s.universe, result.solution);
  EXPECT_GE(result.stats.lambdaMeasured, result.stats.lambdaTarget - 1e-9);
  // Lemma 6.1: val <= (2*Delta^2 + 1) * p(S).
  const double d = result.stats.delta;
  EXPECT_LE(result.dualObjective, (2 * d * d + 1) * result.profit + 1e-6);
}

TEST(TwoPhase, EmptyUniverse) {
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(makePathTree(0, 4));
  // One demand so the universe is non-trivially constructed, then none.
  problem.demands = {};
  problem.access = {};
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  Layering layering;
  layering.numGroups = 0;
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(universe, layering, cfg);
  EXPECT_EQ(result.profit, 0);
  EXPECT_TRUE(result.solution.instances.empty());
}

TEST(TwoPhase, FixedScheduleMatchesWhileLoopSolution) {
  // With a generous fixed schedule the outcome must be identical to the
  // while-loop schedule: the same MIS sequence is produced because empty
  // steps contribute nothing and seeds are keyed by (epoch, stage, step).
  Ctx s1 = makeSetup(11, 24, 30, 2);
  Ctx s2 = makeSetup(11, 24, 30, 2);
  FrameworkConfig loop;
  loop.seed = 3;
  FrameworkConfig fixed;
  fixed.seed = 3;
  fixed.fixedSchedule = true;
  fixed.stepsPerStage = 64;
  const TwoPhaseResult a = runTwoPhase(s1.universe, s1.layering, loop);
  const TwoPhaseResult b = runTwoPhase(s2.universe, s2.layering, fixed);
  EXPECT_EQ(a.solution.instances, b.solution.instances);
  EXPECT_DOUBLE_EQ(a.profit, b.profit);
}

TEST(TwoPhase, StepsPerStageBoundedByProfitSpread) {
  // Lemma 5.1: steps per stage = O(log(pmax/pmin)).
  Ctx s = makeSetup(12, 32, 60, 2);
  FrameworkConfig cfg;
  const TwoPhaseResult result = runTwoPhase(s.universe, s.layering, cfg);
  const double spread = s.universe.profitMax() / s.universe.profitMin();
  EXPECT_LE(result.stats.maxStepsInStage,
            4 + 2 * static_cast<std::int32_t>(std::ceil(std::log2(spread))));
}

TEST(ApproximationBound, Formulas) {
  EXPECT_DOUBLE_EQ(approximationBound(RaiseRule::Unit, 6, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(approximationBound(RaiseRule::Unit, 3, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(approximationBound(RaiseRule::Unit, 2, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(approximationBound(RaiseRule::Narrow, 6, 1.0), 73.0);
  EXPECT_DOUBLE_EQ(approximationBound(RaiseRule::Narrow, 3, 1.0), 19.0);
  // (20+eps) for the PS baseline: (3+1)/(1/(5+eps)).
  EXPECT_NEAR(approximationBound(RaiseRule::Unit, 3, 1.0 / 5.1), 20.4, 1e-9);
}

TEST(StagePlan, PaperXiValues) {
  // §5: Delta = 6 -> xi = 14/15; §7: Delta = 3 -> xi = 8/9.
  const StagePlan tree =
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Unit, 0.1, 6, 1.0);
  EXPECT_NEAR(tree.xi, 14.0 / 15.0, 1e-12);
  const StagePlan line =
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Unit, 0.1, 3, 1.0);
  EXPECT_NEAR(line.xi, 8.0 / 9.0, 1e-12);
}

TEST(StagePlan, StageCountCoversEpsilon) {
  const StagePlan plan =
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Unit, 0.05, 6, 1.0);
  EXPECT_LE(std::pow(plan.xi, plan.numStages), 0.05 + 1e-12);
  EXPECT_GT(std::pow(plan.xi, plan.numStages - 1), 0.05);
}

TEST(StagePlan, NarrowBaseScalesWithHmin) {
  const StagePlan a =
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Narrow, 0.1, 6, 0.5);
  const StagePlan b =
      makeStagePlan(SchedulePolicy::Staged, RaiseRule::Narrow, 0.1, 6, 0.1);
  // Smaller hmin -> xi closer to 1 -> more stages (the 1/hmin factor in
  // Theorem 6.3's round bound).
  EXPECT_GT(b.numStages, a.numStages);
  EXPECT_NEAR(a.xi, 73.0 / 73.5, 1e-12);
}

TEST(StagePlan, ThresholdSingleStage) {
  const StagePlan plan =
      makeStagePlan(SchedulePolicy::Threshold, RaiseRule::Unit, 0.25, 3, 1.0);
  EXPECT_EQ(plan.numStages, 1);
  EXPECT_NEAR(plan.lambdaTarget, 1.0 / 5.25, 1e-12);
  EXPECT_NEAR(plan.stageTarget(1), 1.0 / 5.25, 1e-12);
}

}  // namespace
}  // namespace treesched
