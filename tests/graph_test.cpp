#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "gen/tree_gen.hpp"
#include "graph/tree_network.hpp"
#include "test_fixtures.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

using testing::P;
using testing::paperExampleTree;

TEST(TreeNetwork, RejectsNonTrees) {
  // Too few edges (disconnected).
  EXPECT_THROW(TreeNetwork(0, 3, {{0, 1}, {0, 1}}), CheckError);
  // Self loop.
  EXPECT_THROW(TreeNetwork(0, 2, {{1, 1}}), CheckError);
  // Cycle + disconnected vertex.
  EXPECT_THROW(TreeNetwork(0, 4, {{0, 1}, {1, 2}, {2, 0}}), CheckError);
}

TEST(TreeNetwork, SingleVertex) {
  const TreeNetwork t(0, 1, {});
  EXPECT_EQ(t.numVertices(), 1);
  EXPECT_EQ(t.numEdges(), 0);
  EXPECT_EQ(t.distance(0, 0), 0);
}

TEST(TreeNetwork, PathTreeBasics) {
  const TreeNetwork t = makePathTree(0, 5);
  EXPECT_EQ(t.numEdges(), 4);
  EXPECT_EQ(t.distance(0, 4), 4);
  EXPECT_EQ(t.lca(0, 4), 0);
  EXPECT_EQ(t.distance(2, 2), 0);
  const auto edges = t.pathEdges(1, 3);
  EXPECT_EQ(edges.size(), 2u);
}

TEST(TreeNetwork, StarTreeBasics) {
  const TreeNetwork t = makeStarTree(0, 6);
  EXPECT_EQ(t.degree(0), 5);
  EXPECT_EQ(t.distance(1, 2), 2);
  EXPECT_EQ(t.lca(1, 2), 0);
  EXPECT_EQ(t.meetingPoint(1, 2, 3), 0);
}

TEST(TreeNetwork, PaperExamplePath) {
  const TreeNetwork t = paperExampleTree();
  // path(4,13) = 4,2,5,8,13 (paper labels).
  const auto vertices = t.pathVertices(P(4), P(13));
  const std::vector<VertexId> expected{P(4), P(2), P(5), P(8), P(13)};
  EXPECT_EQ(vertices, expected);
}

TEST(TreeNetwork, PaperExampleBendingPoints) {
  const TreeNetwork t = paperExampleTree();
  // "with respect to nodes 3 and 9, the bending points of the demand
  // <4,13> are 2 and 5" (§4.4).
  EXPECT_EQ(t.meetingPoint(P(4), P(13), P(3)), P(2));
  EXPECT_EQ(t.meetingPoint(P(4), P(13), P(9)), P(5));
}

TEST(TreeNetwork, OnPath) {
  const TreeNetwork t = paperExampleTree();
  EXPECT_TRUE(t.onPath(P(5), P(4), P(13)));
  EXPECT_TRUE(t.onPath(P(4), P(4), P(13)));
  EXPECT_FALSE(t.onPath(P(9), P(4), P(13)));
}

TEST(TreeNetwork, StepToward) {
  const TreeNetwork t = paperExampleTree();
  EXPECT_EQ(t.stepToward(P(4), P(13)), P(2));
  EXPECT_EQ(t.stepToward(P(13), P(4)), P(8));
  EXPECT_THROW(t.stepToward(P(4), P(4)), CheckError);
}

TEST(TreeNetwork, EdgeBetween) {
  const TreeNetwork t = paperExampleTree();
  EXPECT_NE(t.edgeBetween(P(2), P(5)), kNoEdge);
  EXPECT_EQ(t.edgeBetween(P(2), P(8)), kNoEdge);
}

TEST(TreeNetwork, PathEdgesMatchVertices) {
  const TreeNetwork t = paperExampleTree();
  const auto vertices = t.pathVertices(P(11), P(14));
  const auto edges = t.pathEdges(P(11), P(14));
  ASSERT_EQ(edges.size() + 1, vertices.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [a, b] = t.edge(edges[i]);
    const bool matches = (a == vertices[i] && b == vertices[i + 1]) ||
                         (b == vertices[i] && a == vertices[i + 1]);
    EXPECT_TRUE(matches) << "edge " << i << " does not join consecutive path "
                         << "vertices";
  }
}

// ---- Property tests over the shape gallery ----

struct ShapeCase {
  TreeShape shape;
  std::int32_t n;
};

class TreeShapeTest : public ::testing::TestWithParam<ShapeCase> {};

// Reference BFS distance for validation.
std::int32_t bfsDistance(const TreeNetwork& t, VertexId from, VertexId to) {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(t.numVertices()), -1);
  std::queue<VertexId> q;
  q.push(from);
  dist[static_cast<std::size_t>(from)] = 0;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const AdjEntry& a : t.neighbors(v)) {
      if (dist[static_cast<std::size_t>(a.to)] == -1) {
        dist[static_cast<std::size_t>(a.to)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist[static_cast<std::size_t>(to)];
}

TEST_P(TreeShapeTest, GeneratedTreeIsValidAndLcaMatchesBfs) {
  const auto& param = GetParam();
  Rng rng(1234 + param.n);
  const TreeNetwork t = generateTree(param.shape, 0, param.n, rng);
  EXPECT_EQ(t.numVertices(), param.n);
  // Spot-check distances vs BFS on random pairs.
  Rng pairRng(99);
  for (int i = 0; i < 25; ++i) {
    const auto u = static_cast<VertexId>(
        pairRng.nextBounded(static_cast<std::uint64_t>(param.n)));
    const auto v = static_cast<VertexId>(
        pairRng.nextBounded(static_cast<std::uint64_t>(param.n)));
    EXPECT_EQ(t.distance(u, v), bfsDistance(t, u, v));
    EXPECT_EQ(t.distance(u, v),
              static_cast<std::int32_t>(t.pathEdges(u, v).size()));
  }
}

TEST_P(TreeShapeTest, MeetingPointLiesOnAllPairwisePaths) {
  const auto& param = GetParam();
  Rng rng(77 + param.n);
  const TreeNetwork t = generateTree(param.shape, 0, param.n, rng);
  Rng pickRng(5);
  for (int i = 0; i < 25; ++i) {
    const auto a = static_cast<VertexId>(
        pickRng.nextBounded(static_cast<std::uint64_t>(param.n)));
    const auto b = static_cast<VertexId>(
        pickRng.nextBounded(static_cast<std::uint64_t>(param.n)));
    const auto c = static_cast<VertexId>(
        pickRng.nextBounded(static_cast<std::uint64_t>(param.n)));
    const VertexId m = t.meetingPoint(a, b, c);
    EXPECT_TRUE(t.onPath(m, a, b));
    EXPECT_TRUE(t.onPath(m, a, c));
    EXPECT_TRUE(t.onPath(m, b, c));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, TreeShapeTest,
    ::testing::Values(ShapeCase{TreeShape::UniformRandom, 2},
                      ShapeCase{TreeShape::UniformRandom, 17},
                      ShapeCase{TreeShape::UniformRandom, 128},
                      ShapeCase{TreeShape::RandomAttachment, 64},
                      ShapeCase{TreeShape::Path, 33},
                      ShapeCase{TreeShape::Star, 33},
                      ShapeCase{TreeShape::Caterpillar, 40},
                      ShapeCase{TreeShape::Spider, 41},
                      ShapeCase{TreeShape::BalancedBinary, 63}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return treeShapeName(info.param.shape) + "_" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace treesched
