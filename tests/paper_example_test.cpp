// End-to-end checks on the paper's own worked example: the 14-vertex tree
// of Figure 6 with the demands of Figure 2 / §4.4 / Appendix A. These pin
// the implementation to the paper's stated facts, not just to its
// abstract properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "decomp/tree_decomposition.hpp"
#include "exact/brute_force.hpp"
#include "test_fixtures.hpp"

namespace treesched {
namespace {

using testing::P;
using testing::paperExampleTree;

TreeProblem exampleProblem() {
  TreeProblem problem;
  problem.numVertices = 14;
  problem.networks.push_back(paperExampleTree());
  // Figure 2's demands: <1,10>, <2,3>, <12,13> (paper labels).
  auto add = [&](int pu, int pv, double profit, double height) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = P(pu);
    d.v = P(pv);
    d.profit = profit;
    d.height = height;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  };
  add(1, 10, 1.0, 1.0);
  add(2, 3, 1.0, 1.0);
  add(12, 13, 1.0, 1.0);
  problem.validate();
  return problem;
}

TEST(PaperExample, Figure2UnitHeightOnlyOneSchedulable) {
  // "In the unit height case, only one of the three demands can be
  // scheduled" — they pairwise share edges in our reconstruction? The
  // paper's Figure 2 tree differs from Figure 6; on OUR fixture, verify
  // via brute force that the optimum schedules a maximal conflict-free
  // subset and that validation agrees with pairwise overlap.
  const TreeProblem problem = exampleProblem();
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult exact = bruteForceExact(u);
  ASSERT_TRUE(exact.provedOptimal);
  requireFeasible(u, exact.solution);
  // Sanity: the exact optimum is at least one demand.
  EXPECT_GE(exact.profit, 1.0);
}

TEST(PaperExample, Figure2ArbitraryHeights) {
  // "suppose their heights are 0.4, 0.7 and 0.3 ... the first and third
  // demand can be scheduled together" — the statement is about demands
  // sharing one edge; rebuild it literally: three demands through a
  // common edge with those heights.
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(makePathTree(0, 4));  // 0-1-2-3
  auto add = [&](double height) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = 0;
    d.v = 3;  // all through every edge
    d.profit = 1.0;
    d.height = height;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  };
  add(0.4);
  add(0.7);
  add(0.3);
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  Solution firstAndThird;
  firstAndThird.instances = {0, 2};
  EXPECT_TRUE(validateSolution(u, firstAndThird).feasible) << "0.4+0.3 fits";
  Solution firstAndSecond;
  firstAndSecond.instances = {0, 1};
  EXPECT_FALSE(validateSolution(u, firstAndSecond).feasible) << "0.4+0.7 > 1";
}

TEST(PaperExample, AppendixPiOfDemand413) {
  // Appendix A: with root 1, pi(<4,13>) = {<2,4>, <2,5>}.
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = rootFixingDecomposition(t, P(1));
  const VertexId mu = captureNode(t, h, P(4), P(13));
  ASSERT_EQ(mu, P(2));
  // Wings of mu on the path are exactly the edges (2,4) and (2,5).
  const EdgeId wing1 = t.edgeBetween(P(2), P(4));
  const EdgeId wing2 = t.edgeBetween(P(2), P(5));
  EXPECT_NE(wing1, kNoEdge);
  EXPECT_NE(wing2, kNoEdge);
  const auto path = t.pathEdges(P(4), P(13));
  EXPECT_NE(std::find(path.begin(), path.end(), wing1), path.end());
  EXPECT_NE(std::find(path.begin(), path.end(), wing2), path.end());
}

TEST(PaperExample, Section44WingsOfPathVertices) {
  // §4.4: "node 4 has only one wing <4,2>, while node 8 has two wings
  // <5,8> and <8,13>" on path(<4,13>).
  const TreeNetwork t = paperExampleTree();
  const auto path = t.pathEdges(P(4), P(13));
  // Wing of endpoint 4.
  const EdgeId w4 = t.edgeBetween(P(4), P(2));
  EXPECT_EQ(path.front(), w4);
  // Wings of interior node 8.
  const EdgeId w8a = t.edgeBetween(P(5), P(8));
  const EdgeId w8b = t.edgeBetween(P(8), P(13));
  EXPECT_NE(std::find(path.begin(), path.end(), w8a), path.end());
  EXPECT_NE(std::find(path.begin(), path.end(), w8b), path.end());
}

TEST(PaperExample, TreeDecompositionFactsOfFigure3) {
  // Figure 3's commentary: C(2) = {2,4} has pivot set {1,5}; any valid
  // decomposition capturing 4 strictly below 2 reproduces chi(2) = {1,5}.
  // Build H exactly as described: 2's child is 4.
  const TreeNetwork t = paperExampleTree();
  // Use the root-fixing decomposition rooted at 5: then C(2) = {2,4,...}?
  // Simpler: hand-build a small H fragment via balancing and check the
  // generic pivot computation on a decomposition where C(2) == {2,4}.
  // Root-fixing at vertex 1 gives C(4) = {4} and C(2) = {2,4,5,...}; to
  // get C(2) = {2,4} exactly we hand-author H: root 5, children {2,8,9},
  // 2's children {1,4}, 1's children {3}, 3's children {6}, 6's {7},
  // 8's {12,13}, 13's {14}, 9's {10}, 10's {11}.
  std::vector<VertexId> parent(14, kNoVertex);
  auto setp = [&](int child, int par) {
    parent[static_cast<std::size_t>(P(child))] = P(par);
  };
  setp(2, 5);
  setp(8, 5);
  setp(9, 5);
  setp(1, 2);
  setp(4, 2);
  setp(3, 1);
  setp(6, 3);
  setp(7, 6);
  setp(12, 8);
  setp(13, 8);
  setp(14, 13);
  setp(10, 9);
  setp(11, 10);
  const TreeDecomposition h = finalizeDecomposition(0, P(5), std::move(parent));
  ASSERT_EQ(checkTreeDecomposition(t, h), "");
  const auto pivots = computePivotSets(t, h);
  // C(4) = {4}: neighbours {2}.
  EXPECT_EQ(pivots[static_cast<std::size_t>(P(4))],
            (std::vector<VertexId>{P(2)}));
  // C(2) = {2,1,4,3,6,7}: neighbours {5} — the paper's chi(2) = {1,5}
  // refers to ITS H where C(2) = {2,4}; in ours 1 is inside C(2). Check
  // the paper's statement on the exact component instead:
  // Gamma({2,4}) = {1,5}.
  // (computed directly from T)
  std::vector<VertexId> componentNeighbors;
  for (const VertexId x : {P(2), P(4)}) {
    for (const AdjEntry& a : t.neighbors(x)) {
      if (a.to != P(2) && a.to != P(4)) componentNeighbors.push_back(a.to);
    }
  }
  std::sort(componentNeighbors.begin(), componentNeighbors.end());
  EXPECT_EQ(componentNeighbors, (std::vector<VertexId>{P(1), P(5)}));
}

TEST(PaperExample, LayeringOnExampleTreeSatisfiesInterference) {
  TreeProblem problem = exampleProblem();
  // Add more demands to exercise the layering.
  auto add = [&](int pu, int pv) {
    Demand d;
    d.id = static_cast<DemandId>(problem.demands.size());
    d.u = P(pu);
    d.v = P(pv);
    d.profit = 2.0;
    problem.demands.push_back(d);
    problem.access.push_back({0});
  };
  add(4, 13);
  add(7, 11);
  add(12, 14);
  add(3, 9);
  problem.validate();
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const TreeLayeringResult lay = buildTreeLayering(problem, u);
  EXPECT_EQ(checkLayering(u, lay.layering), "");
  EXPECT_LE(lay.layering.maxCriticalSize, 6);
}

TEST(PaperExample, AllSolversAgreeOnFeasibilityAndBounds) {
  TreeProblem problem = exampleProblem();
  const SequentialTreeResult seq = solveSequentialTree(problem);
  const TreeSolveResult dist = solveUnitTree(problem);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult exact = bruteForceExact(u);
  ASSERT_TRUE(exact.provedOptimal);
  EXPECT_GE(seq.profit * 2.0, exact.profit - 1e-9);  // r = 1: 2-approx
  EXPECT_GE(dist.profit * dist.certifiedBound, exact.profit - 1e-9);
}

}  // namespace
}  // namespace treesched
