// Gates for the policy registry (policy/registry.hpp): registry
// sanity, the Scheduler contract on every preset x every registered
// id, thread-count determinism, bit-identity of the registry reference
// against the direct runTwoPhase entry point, and the scheduler-generic
// online epoch loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <set>
#include <vector>

#include "decomp/layering.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "online/churn_engine.hpp"
#include "policy/online_policy.hpp"
#include "policy/registry.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

// Reduced scales keep the full preset x policy sweep fast enough for
// the sanitizer legs while still touching every preset's structure.
constexpr std::int32_t kOneshotDemands = 120;
constexpr std::int32_t kChurnDemands = 80;

SchedulerConfig testConfig(std::uint64_t seed) {
  SchedulerConfig config;
  config.core.seed = seed;
  config.core.epsilon = 0.3;
  config.core.misRoundBudget = 4;
  config.core.stepsPerStage = 2;
  return config;
}

TEST(SchedulerRegistry, SanityUniqueNonEmptyAndRegexFilter) {
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  const std::vector<std::string> all = registry.ids();
  ASSERT_GE(all.size(), 4u);  // the tournament floor
  const std::set<std::string> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size()) << "duplicate registered id";
  EXPECT_EQ(registry.ids(std::regex(".*")), all);

  // The family the PR promises: reference, a two_phase variant per
  // axis, both src/exact baselines and the literature baseline.
  for (const char* id :
       {"two_phase", "two_phase/full_mis", "two_phase/threshold",
        "two_phase/local_search", "greedy", "greedy/local_search",
        "emr_line_pack"}) {
    EXPECT_TRUE(registry.has(id)) << id;
  }
  const std::vector<std::string> variants =
      registry.ids(std::regex("two_phase/.*"));
  EXPECT_EQ(variants.size(), 3u);
  EXPECT_TRUE(registry.info("two_phase").certified);
  EXPECT_TRUE(registry.info("two_phase").distributed);
  EXPECT_FALSE(registry.info("greedy").certified);

  EXPECT_THROW(registry.make("no_such_policy"), CheckError);
  EXPECT_THROW(registry.info("no_such_policy"), CheckError);
}

TEST(SchedulerRegistry, DuplicateRegistrationThrows) {
  SchedulerRegistry& registry = SchedulerRegistry::all();
  SchedulerInfo clash{"two_phase", "clash", true, true};
  EXPECT_THROW(
      registry.add(clash,
                   [](const SchedulerConfig&) -> std::unique_ptr<Scheduler> {
                     return nullptr;
                   }),
      CheckError);
}

/// Every registered id must produce a feasible, correctly priced,
/// reproducible solution on every preset of the catalogue.
TEST(SchedulerContract, EveryPolicyFeasibleOnEveryPreset) {
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  for (const ScenarioPresetInfo& preset : scenarioPresets()) {
    const ScenarioProblem scenario =
        buildScenarioProblem(preset.name, 11, kOneshotDemands);
    for (const std::string& id : registry.ids()) {
      const auto scheduler = registry.make(id, testConfig(11));
      const ScheduleOutcome outcome = scheduler->solve(
          {scenario.universe, scenario.layering, scenario.access, {},
           nullptr});
      SCOPED_TRACE(preset.name + " / " + id);
      requireFeasible(scenario.universe, outcome.solution);
      EXPECT_GT(outcome.profit, 0);
      EXPECT_NEAR(outcome.profit,
                  solutionProfit(scenario.universe, outcome.solution), 1e-9);

      // Determinism: a second instantiation replays bit-identically.
      const ScheduleOutcome again =
          registry.make(id, testConfig(11))
              ->solve({scenario.universe, scenario.layering, scenario.access,
                       {}, nullptr});
      EXPECT_EQ(outcome.solution.instances, again.solution.instances);
      EXPECT_EQ(outcome.profit, again.profit);
      EXPECT_EQ(outcome.messages, again.messages);
    }
  }
}

/// Solutions must draw only from the restricted active set.
TEST(SchedulerContract, RestrictionIsHonoured) {
  const ScenarioProblem scenario =
      buildScenarioProblem("cdn_tree_250k", 5, kOneshotDemands);
  // Restrict to the instances of even demands only.
  std::vector<InstanceId> active;
  for (DemandId d = 0; d < scenario.universe.numDemands(); d += 2) {
    const auto span = scenario.universe.instancesOfDemand(d);
    active.insert(active.end(), span.begin(), span.end());
  }
  std::sort(active.begin(), active.end());
  const std::set<InstanceId> allowed(active.begin(), active.end());

  for (const std::string& id : SchedulerRegistry::all().ids()) {
    const auto scheduler = SchedulerRegistry::all().make(id, testConfig(5));
    const ScheduleOutcome outcome = scheduler->solve(
        {scenario.universe, scenario.layering, scenario.access, active,
         nullptr});
    SCOPED_TRACE(id);
    requireFeasible(scenario.universe, outcome.solution);
    for (const InstanceId i : outcome.solution.instances) {
      EXPECT_TRUE(allowed.count(i)) << "instance " << i
                                    << " outside the active set";
    }
  }
}

/// Distributed entries are bit-identical at any thread count.
TEST(SchedulerContract, DeterministicAcrossThreadCounts) {
  for (const char* preset : {"cdn_tree_250k", "metro_line_100k"}) {
    const ScenarioProblem scenario =
        buildScenarioProblem(preset, 3, kOneshotDemands);
    for (const std::string& id : SchedulerRegistry::all().ids()) {
      SchedulerConfig one = testConfig(3);
      one.distributed.threads = 1;
      SchedulerConfig eight = testConfig(3);
      eight.distributed.threads = 8;
      const ScheduleOutcome a =
          SchedulerRegistry::all().make(id, one)->solve(
              {scenario.universe, scenario.layering, scenario.access, {},
               nullptr});
      const ScheduleOutcome b =
          SchedulerRegistry::all().make(id, eight)->solve(
              {scenario.universe, scenario.layering, scenario.access, {},
               nullptr});
      SCOPED_TRACE(std::string(preset) + " / " + id);
      EXPECT_EQ(a.solution.instances, b.solution.instances);
      EXPECT_EQ(a.profit, b.profit);
      EXPECT_EQ(a.messages, b.messages);
      EXPECT_EQ(a.rounds, b.rounds);
    }
  }
}

/// The registry reference entry IS runTwoPhase: same schedule bit for
/// bit, same revenue, same dual bound — the api_redesign's no-drift
/// gate (it runs distributed over a Transport, the direct call runs
/// the centralized engine; the fixed-schedule equivalence makes them
/// one algorithm).
TEST(SchedulerContract, TwoPhaseEntryMatchesDirectRunTwoPhase) {
  for (const char* preset :
       {"cdn_tree_250k", "metro_line_100k", "lossy_wide_area_tree"}) {
    const ScenarioProblem scenario =
        buildScenarioProblem(preset, 17, kOneshotDemands);
    const SchedulerConfig config = testConfig(17);
    const ScheduleOutcome viaRegistry =
        SchedulerRegistry::all().make("two_phase", config)
            ->solve({scenario.universe, scenario.layering, scenario.access,
                     {}, nullptr});

    const TwoPhaseResult direct = runTwoPhase(
        scenario.universe, scenario.layering, config.framework());
    std::vector<InstanceId> directSorted = direct.solution.instances;
    std::sort(directSorted.begin(), directSorted.end());

    SCOPED_TRACE(preset);
    EXPECT_EQ(viaRegistry.solution.instances, directSorted);
    EXPECT_EQ(viaRegistry.profit, direct.profit);
    EXPECT_EQ(viaRegistry.dualUpperBound, direct.dualUpperBound);
    EXPECT_GT(viaRegistry.messages, 0) << "reference must pay wire cost";
  }
}

/// The scheduler-generic online loop: every epoch's admission is
/// feasible over the demands alive that epoch, seeds follow
/// epochProtocolSeed, and the run replays bit-identically.
TEST(OnlinePolicy, SchedulerEpochLoopIsFeasibleAndDeterministic) {
  const ScenarioProblem scenario =
      buildScenarioProblem("flash_crowd_50k", 23, kChurnDemands);
  ChurnEngineConfig config;
  config.epochLength = scenario.epochLength;
  config.solver.seed = 23;

  const ChurnRunResult run =
      runChurnWithScheduler(scenario, scenario.trace, config, "greedy");
  ASSERT_FALSE(run.epochs.empty());
  EXPECT_EQ(run.epochs.size(),
            batchTrace(scenario.trace, config.epochLength).size());
  for (const EpochOutcome& epoch : run.epochs) {
    requireFeasible(scenario.universe, epoch.solution);
    EXPECT_EQ(epoch.protocolSeed,
              epochProtocolSeed(config.solver.seed, epoch.epoch));
  }
  requireFeasible(scenario.universe, run.finalSolution);

  const ChurnRunResult replay =
      runChurnWithScheduler(scenario, scenario.trace, config, "greedy");
  ASSERT_EQ(replay.epochs.size(), run.epochs.size());
  for (std::size_t k = 0; k < run.epochs.size(); ++k) {
    EXPECT_EQ(replay.epochs[k].solution.instances,
              run.epochs[k].solution.instances);
    EXPECT_EQ(replay.epochs[k].profit, run.epochs[k].profit);
  }

  // The "two_phase" id routes to the incremental churn engine.
  const ChurnRunResult reference =
      runChurnWithScheduler(scenario, scenario.trace, config, "two_phase");
  DynamicUniverse dynamic = scenario.treePool != nullptr
                                ? makeDynamicTreeUniverse(scenario.treePool)
                                : makeDynamicLineUniverse(scenario.linePool);
  const ChurnRunResult engine =
      runChurnOverTrace(dynamic, scenario.trace, config);
  ASSERT_EQ(reference.epochs.size(), engine.epochs.size());
  EXPECT_EQ(reference.finalSolution.instances,
            engine.finalSolution.instances);
  EXPECT_EQ(reference.finalProfit, engine.finalProfit);

  EXPECT_THROW(
      runChurnWithScheduler(scenario, scenario.trace, config, "no_such_policy"),
      CheckError);
}

}  // namespace
}  // namespace treesched
