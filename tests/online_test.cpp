// Acceptance gate of the online scheduling subsystem (src/online/).
//
// The sweep drives 5 seeds x {tree, line} x {poisson, flash_crowd}
// churn traces through the epoch-batched churn engine and checks, per
// epoch, the incremental re-solver's contract:
//  * the admitted solution is feasible on the pool universe;
//  * revenue is within the paper's approximation factor of the
//    from-scratch runTwoPhaseRestricted on the surviving demand set
//    (whose profit is itself upper-bounded by the incremental dual
//    certificate);
//  * epochs whose affected region covered the whole active set are
//    bit-identical to the from-scratch solve — solution, profit, dual
//    objective and measured lambda;
// plus unit coverage of the arrival processes, the epoch batcher, the
// incremental communication graph and the live-transport mutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/sim_network.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "online/churn_engine.hpp"
#include "online/incremental.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

constexpr std::uint64_t kSeeds[] = {3, 14, 25, 36, 47};

// Test-scale churn workload: enough networks (numDemands / 8) that an
// epoch's churn touches a strict subset of them, so the warm
// (partial-region) path is exercised alongside the full re-solves.
constexpr std::int32_t kPoolDemands = 216;
constexpr double kHorizon = 128.0;

ArrivalConfig sweepArrivals(ArrivalModel model, std::uint64_t seed) {
  ArrivalConfig config;
  config.model = model;
  config.seed = seed ^ 0xa1157ULL;
  config.horizon = kHorizon;
  config.meanLifetime = 48.0;
  config.burstCenter = 0.3;
  config.burstWidth = 0.08;
  config.burstFraction = 0.5;
  return config;
}

ChurnEngineConfig sweepEngine(std::uint64_t seed) {
  ChurnEngineConfig config;
  config.epochLength = 8.0;
  config.solver.seed = seed * 31 + 5;
  config.solver.epsilon = 0.35;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  // Epoch re-solves are bit-identical at any thread count (the engine
  // guarantee), so half the sweep runs the parallel sections.
  config.solver.threads = seed % 2 == 0 ? 2 : 1;
  return config;
}

FrameworkConfig scratchConfig(const OnlineSolverConfig& solver,
                              std::uint64_t protocolSeed) {
  FrameworkConfig config;
  config.epsilon = solver.epsilon;
  config.raise = solver.rule;
  config.hmin = solver.hmin;
  config.seed = protocolSeed;
  config.misRoundBudget = solver.misRoundBudget;
  config.fixedSchedule = true;
  config.stepsPerStage = solver.stepsPerStage;
  return config;
}

/// Replays the epoch batches against a demand mask and returns the
/// active instance list after each epoch.
std::vector<InstanceId> activeInstancesAfter(
    const InstanceUniverse& universe, const std::vector<std::uint8_t>& mask) {
  std::vector<InstanceId> ids;
  for (DemandId d = 0; d < universe.numDemands(); ++d) {
    if (mask[static_cast<std::size_t>(d)] == 0) continue;
    const auto span = universe.instancesOfDemand(d);
    ids.insert(ids.end(), span.begin(), span.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The shared per-epoch verification: feasibility, the approximation
/// gate against from-scratch, and bit-identity on full re-solves. The
/// epochs run over `dynamic` (the incremental engine's own universe);
/// the static pool `universe`/`layering` drive the from-scratch
/// comparators.
void verifyChurnRun(DynamicUniverse& dynamic, const InstanceUniverse& universe,
                    const Layering& layering, const ChurnTrace& trace,
                    const ChurnEngineConfig& config) {
  const ChurnRunResult result = runChurnOverTrace(dynamic, trace, config);
  ASSERT_FALSE(result.epochs.empty());

  std::vector<std::uint8_t> mask(
      static_cast<std::size_t>(universe.numDemands()), 0);
  const std::vector<EpochBatch> batches =
      batchTrace(trace, config.epochLength);
  ASSERT_EQ(batches.size(), result.epochs.size());

  std::int32_t fullResolves = 0;
  std::int32_t warmChurnEpochs = 0;
  for (std::size_t k = 0; k < result.epochs.size(); ++k) {
    const EpochOutcome& epoch = result.epochs[k];
    for (const DemandId d : batches[k].departures) {
      mask[static_cast<std::size_t>(d)] = 0;
    }
    for (const DemandId d : batches[k].arrivals) {
      mask[static_cast<std::size_t>(d)] = 1;
    }
    const std::vector<InstanceId> active =
        activeInstancesAfter(universe, mask);
    ASSERT_EQ(epoch.activeInstances,
              static_cast<std::int64_t>(active.size()));

    const ValidationReport report =
        validateSolution(universe, epoch.solution);
    EXPECT_TRUE(report.feasible) << report.firstViolation;
    EXPECT_DOUBLE_EQ(epoch.profit,
                     solutionProfit(universe, epoch.solution));

    const TwoPhaseResult scratch = runTwoPhaseRestricted(
        universe, layering, scratchConfig(config.solver, epoch.protocolSeed),
        active);

    if (epoch.fullResolve) {
      ++fullResolves;
      // The whole instance was affected: bit-identical to from-scratch.
      std::vector<InstanceId> incremental = epoch.solution.instances;
      std::vector<InstanceId> reference = scratch.solution.instances;
      std::sort(incremental.begin(), incremental.end());
      std::sort(reference.begin(), reference.end());
      EXPECT_EQ(incremental, reference);
      EXPECT_EQ(epoch.profit, scratch.profit);
      EXPECT_EQ(epoch.dualObjective, scratch.dualObjective);
      EXPECT_EQ(epoch.lambdaMeasured, scratch.stats.lambdaMeasured);
    } else {
      if (epoch.arrivals + epoch.departures > 0) ++warmChurnEpochs;
      // Warm epoch: the slackness invariant must still hold over the
      // whole active set...
      if (!active.empty()) {
        EXPECT_GE(epoch.lambdaMeasured,
                  scratch.stats.lambdaTarget * (1.0 - 1e-6));
      }
      // ...so the dual certificate upper-bounds OPT(active), hence also
      // the from-scratch profit...
      EXPECT_LE(scratch.profit, epoch.dualUpperBound * (1.0 + 1e-9));
      // ...and the admitted revenue is within the approximation factor.
      const double bound = approximationBound(
          config.solver.rule, std::max(1, layering.maxCriticalSize),
          std::max(epoch.lambdaMeasured, 1e-9));
      EXPECT_GE(epoch.profit * bound, scratch.profit * (1.0 - 1e-9));
    }
  }
  // The sweep must exercise both paths: the first admitting epoch is a
  // full re-solve, and the localized churn afterwards must produce warm
  // partial-region epochs (resolve fraction < 1 on average).
  EXPECT_GE(fullResolves, 1);
  EXPECT_GE(warmChurnEpochs, 1);
  EXPECT_LT(result.meanResolveFraction, 1.0);
  EXPECT_GT(result.meanResolveFraction, 0.0);
}

class OnlineChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineChurnSweep, TreePoissonEpochsMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  const ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed,
                                                           kPoolDemands);
  const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  verifyChurnRun(dynamic, prepared.universe, prepared.layering,
                 generateChurnTrace(
                     sweepArrivals(ArrivalModel::Poisson, seed),
                     scenario.pool.numDemands()),
                 sweepEngine(seed));
}

TEST_P(OnlineChurnSweep, TreeFlashCrowdEpochsMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  const ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed,
                                                           kPoolDemands);
  const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  verifyChurnRun(dynamic, prepared.universe, prepared.layering,
                 generateChurnTrace(
                     sweepArrivals(ArrivalModel::FlashCrowd, seed),
                     scenario.pool.numDemands()),
                 sweepEngine(seed));
}

TEST_P(OnlineChurnSweep, LinePoissonEpochsMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  const ChurnLineScenario scenario =
      makeDiurnalMetroLine100k(seed, kPoolDemands);
  const PreparedRun prepared = prepareUnitLineRun(scenario.pool);
  DynamicUniverse dynamic = makeDynamicLineUniverse(scenario.pool);
  verifyChurnRun(dynamic, prepared.universe, prepared.layering,
                 generateChurnTrace(
                     sweepArrivals(ArrivalModel::Poisson, seed),
                     scenario.pool.numDemands()),
                 sweepEngine(seed));
}

TEST_P(OnlineChurnSweep, LineFlashCrowdEpochsMatchFromScratch) {
  const std::uint64_t seed = GetParam();
  const ChurnLineScenario scenario =
      makeDiurnalMetroLine100k(seed, kPoolDemands);
  const PreparedRun prepared = prepareUnitLineRun(scenario.pool);
  DynamicUniverse dynamic = makeDynamicLineUniverse(scenario.pool);
  verifyChurnRun(dynamic, prepared.universe, prepared.layering,
                 generateChurnTrace(
                     sweepArrivals(ArrivalModel::FlashCrowd, seed),
                     scenario.pool.numDemands()),
                 sweepEngine(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineChurnSweep, ::testing::ValuesIn(kSeeds),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

// ---- Warm-start protocol entry point ----

// The restricted distributed run must reproduce the restricted
// centralized engine bit for bit — the obligation the full-resolve gate
// builds on, checked here directly against a hand-picked restriction.
TEST(WarmStartProtocol, RestrictedRunMatchesRestrictedCentralized) {
  TreeScenarioConfig cfg;
  cfg.seed = 11;
  cfg.numVertices = 24;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 20;
  cfg.demands.accessProbability = 0.6;
  const TreeProblem problem = makeTreeScenario(cfg);
  const PreparedRun prepared = prepareUnitTreeRun(problem);

  std::vector<InstanceId> restriction;
  for (DemandId d = 0; d < prepared.universe.numDemands(); d += 2) {
    const auto span = prepared.universe.instancesOfDemand(d);
    restriction.insert(restriction.end(), span.begin(), span.end());
  }
  std::sort(restriction.begin(), restriction.end());
  ASSERT_FALSE(restriction.empty());

  DistributedOptions dopt;
  dopt.seed = 29;
  dopt.misRoundBudget = 5;
  dopt.stepsPerStage = 3;
  dopt.recordRaiseLog = true;
  WarmStart warm;
  warm.activeInstances = restriction;
  SimNetwork bus(prepared.adjacency);
  const DistributedResult dist = runDistributedWarmStart(
      prepared.universe, prepared.layering, bus, dopt, warm);

  FrameworkConfig copt;
  copt.seed = dopt.seed;
  copt.misRoundBudget = dopt.misRoundBudget;
  copt.fixedSchedule = true;
  copt.stepsPerStage = dopt.stepsPerStage;
  const TwoPhaseResult central = runTwoPhaseRestricted(
      prepared.universe, prepared.layering, copt, restriction);

  std::vector<InstanceId> reference = central.solution.instances;
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(dist.solution.instances, reference);
  EXPECT_EQ(dist.profit, central.profit);
  EXPECT_EQ(dist.dualObjective, central.dualObjective);
  EXPECT_EQ(dist.lambdaMeasured, central.stats.lambdaMeasured);
  EXPECT_EQ(dist.raises, central.stats.raises);
  EXPECT_TRUE(dist.localViewsConsistent);

  // Only restricted instances were raised, and the log's per-tuple
  // groups are the phase-1 stack (members ascending).
  EXPECT_EQ(static_cast<std::int64_t>(dist.raiseLog.size()), dist.raises);
  for (std::size_t r = 0; r < dist.raiseLog.size(); ++r) {
    EXPECT_TRUE(std::binary_search(restriction.begin(), restriction.end(),
                                   dist.raiseLog[r].instance));
    if (r > 0 && dist.raiseLog[r - 1].tuple == dist.raiseLog[r].tuple) {
      EXPECT_LT(dist.raiseLog[r - 1].instance, dist.raiseLog[r].instance);
    }
  }

  // An empty warm start is the classic full run.
  SimNetwork bus2(prepared.adjacency);
  const DistributedResult full = runDistributedWarmStart(
      prepared.universe, prepared.layering, bus2, dopt, WarmStart{});
  const DistributedResult classic = runDistributedUnitTree(problem, dopt);
  EXPECT_EQ(full.solution.instances, classic.solution.instances);
  EXPECT_EQ(full.profit, classic.profit);
}

// ---- Incremental communication graph + live transport ----

TEST(IncrementalSolver, LiveGraphMatchesFromScratchEveryEpoch) {
  const ChurnTreeScenario scenario = makeFlashCrowdTree50k(7, 120);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  OnlineSolverConfig solver;
  solver.seed = 99;
  SimNetwork bus(std::vector<std::vector<std::int32_t>>(
      static_cast<std::size_t>(scenario.pool.numDemands())));
  IncrementalSolver engine(dynamic, solver, bus);

  const ChurnTrace trace = generateChurnTrace(
      sweepArrivals(ArrivalModel::Poisson, 7), scenario.pool.numDemands());
  std::vector<std::vector<std::int32_t>> maskedAccess(
      scenario.pool.access.size());
  for (const EpochBatch& batch : batchTrace(trace, 8.0)) {
    engine.applyEpoch(batch.arrivals, batch.departures);
    for (const DemandId d : batch.departures) {
      maskedAccess[static_cast<std::size_t>(d)].clear();
    }
    for (const DemandId d : batch.arrivals) {
      maskedAccess[static_cast<std::size_t>(d)] =
          scenario.pool.access[static_cast<std::size_t>(d)];
    }
    const auto expected =
        communicationGraph(maskedAccess, scenario.pool.numNetworks());
    for (DemandId d = 0; d < scenario.pool.numDemands(); ++d) {
      const auto live = engine.transport().neighbors(d);
      const std::vector<std::int32_t> liveList(live.begin(), live.end());
      ASSERT_EQ(liveList, expected[static_cast<std::size_t>(d)])
          << "demand " << d << " after epoch " << engine.numEpochs();
    }
    // The persistent LHS stays a replay of the surviving raises (bounds
    // the floating-point residue of departure purges).
    EXPECT_LT(engine.maxLhsDeviationFromReplay(), 1e-7);
    // Stack compaction invariant: purged records leave with their sets,
    // so every stored raise is live and every stored set non-empty.
    EXPECT_LE(engine.stackSets(), engine.storedRaises());
  }
}

// ---- Phase-1 stack compaction (ROADMAP follow-up) ----

// Fully-purged tuple sets must be dropped the epoch their last member
// departs — not accumulate until the next full re-solve. Departing every
// active demand therefore leaves a completely empty stack.
TEST(IncrementalSolver, StackCompactionDropsFullyPurgedSets) {
  const ChurnTreeScenario scenario = makeFlashCrowdTree50k(11, 96);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  OnlineSolverConfig solver;
  solver.seed = 41;
  SimNetwork bus(std::vector<std::vector<std::int32_t>>(
      static_cast<std::size_t>(scenario.pool.numDemands())));
  IncrementalSolver engine(dynamic, solver, bus);

  const ChurnTrace trace = generateChurnTrace(
      sweepArrivals(ArrivalModel::Poisson, 11), scenario.pool.numDemands());
  for (const EpochBatch& batch : batchTrace(trace, 8.0)) {
    engine.applyEpoch(batch.arrivals, batch.departures);
    EXPECT_LE(engine.stackSets(), engine.storedRaises());
  }
  ASSERT_GT(engine.activeDemands(), 0);
  ASSERT_GT(engine.storedRaises(), 0);

  // Depart everyone: every raise purges, every set empties, and the
  // eager compaction must leave nothing behind.
  std::vector<DemandId> everyone;
  for (DemandId d = 0; d < scenario.pool.numDemands(); ++d) {
    if (engine.isActive(d)) everyone.push_back(d);
  }
  const EpochOutcome outcome = engine.applyEpoch({}, everyone);
  EXPECT_EQ(engine.activeDemands(), 0);
  EXPECT_EQ(engine.stackSets(), 0);
  EXPECT_EQ(engine.storedRaises(), 0);
  EXPECT_TRUE(outcome.solution.instances.empty());
}

// ---- SLA metrics: admission latency in epochs ----

TEST(IncrementalSolver, AdmissionSlaTracksFirstAdmission) {
  const ChurnTreeScenario scenario = makeFlashCrowdTree50k(13, 64);
  DynamicUniverse dynamic = makeDynamicTreeUniverse(scenario.pool);
  OnlineSolverConfig solver;
  solver.seed = 57;
  SimNetwork bus(std::vector<std::vector<std::int32_t>>(
      static_cast<std::size_t>(scenario.pool.numDemands())));
  IncrementalSolver engine(dynamic, solver, bus);

  std::vector<DemandId> all;
  for (DemandId d = 0; d < scenario.pool.numDemands(); ++d) {
    all.push_back(d);
  }
  const EpochOutcome first = engine.applyEpoch(all, {});

  // Every demand of the first admitted solution was admitted in its
  // arrival epoch: latency 0.
  std::vector<DemandId> admitted;
  for (const InstanceId i : first.solution.instances) {
    admitted.push_back(dynamic.instance(i).demand);
  }
  std::sort(admitted.begin(), admitted.end());
  admitted.erase(std::unique(admitted.begin(), admitted.end()),
                 admitted.end());
  ASSERT_FALSE(admitted.empty());
  EXPECT_EQ(first.newlyAdmittedDemands,
            static_cast<std::int32_t>(admitted.size()));
  AdmissionSla sla = engine.admissionSla();
  EXPECT_EQ(sla.admittedDemands,
            static_cast<std::int64_t>(admitted.size()));
  EXPECT_EQ(sla.departedUnadmitted, 0);
  EXPECT_EQ(sla.meanLatencyEpochs, 0.0);
  EXPECT_EQ(sla.maxLatencyEpochs, 0);
  for (const DemandId d : admitted) {
    EXPECT_EQ(engine.admissionLatencyEpochs(d), 0);
  }

  // Departing everyone counts the never-admitted demands exactly once.
  const auto unadmittedCount =
      static_cast<std::int64_t>(all.size() - admitted.size());
  engine.applyEpoch({}, all);
  sla = engine.admissionSla();
  EXPECT_EQ(sla.departedUnadmitted, unadmittedCount);

  // A re-arrival restarts the clock: re-admitting in its re-arrival
  // epoch keeps max latency at 0 and counts a fresh admission event.
  const EpochOutcome redo = engine.applyEpoch(all, {});
  std::int64_t readmitted = 0;
  for (const InstanceId i : redo.solution.instances) {
    (void)i;
    ++readmitted;
  }
  ASSERT_GT(readmitted, 0);
  sla = engine.admissionSla();
  EXPECT_EQ(sla.admittedDemands,
            static_cast<std::int64_t>(admitted.size()) +
                redo.newlyAdmittedDemands);
  EXPECT_EQ(sla.maxLatencyEpochs, 0);
}

TEST(SimNetworkLiveTopology, ConnectAndDisconnectMaintainSymmetry) {
  SimNetwork bus(std::vector<std::vector<std::int32_t>>(4));
  bus.connectDemand(1, std::vector<std::int32_t>{});
  bus.connectDemand(0, std::vector<std::int32_t>{2, 3});
  EXPECT_EQ(bus.neighbors(2).size(), 1u);
  EXPECT_EQ(bus.neighbors(2)[0], 0);
  EXPECT_EQ(bus.neighbors(3)[0], 0);

  // A connected demand must be disconnected before reconnecting; the
  // neighbour list must be sorted and loop-free.
  EXPECT_THROW(bus.connectDemand(0, std::vector<std::int32_t>{1}),
               CheckError);
  EXPECT_THROW(bus.connectDemand(1, std::vector<std::int32_t>{3, 2}),
               CheckError);
  EXPECT_THROW(bus.connectDemand(1, std::vector<std::int32_t>{1}),
               CheckError);

  bus.disconnectDemand(0);
  EXPECT_TRUE(bus.neighbors(0).empty());
  EXPECT_TRUE(bus.neighbors(2).empty());
  EXPECT_TRUE(bus.neighbors(3).empty());

  // No mutation with staged traffic: the round must end first.
  bus.connectDemand(0, std::vector<std::int32_t>{2});
  bus.broadcast({MessageKind::MisActive, 0, 1, 0.0});
  EXPECT_THROW(bus.disconnectDemand(0), CheckError);
  EXPECT_THROW(bus.connectDemand(3, std::vector<std::int32_t>{1}),
               CheckError);
  bus.endRound();
  EXPECT_EQ(bus.inbox(2).size(), 1u);
  bus.disconnectDemand(0);
}

// ---- Arrival traces ----

TEST(ArrivalTraces, DeterministicWellFormedAndComplete) {
  for (const ArrivalModel model :
       {ArrivalModel::Poisson, ArrivalModel::FlashCrowd,
        ArrivalModel::Diurnal}) {
    const ArrivalConfig config = sweepArrivals(model, 5);
    const ChurnTrace a = generateChurnTrace(config, 150);
    const ChurnTrace b = generateChurnTrace(config, 150);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t e = 0; e < a.events.size(); ++e) {
      EXPECT_EQ(a.events[e].time, b.events[e].time);
      EXPECT_EQ(a.events[e].demand, b.events[e].demand);
      EXPECT_EQ(a.events[e].arrival, b.events[e].arrival);
    }

    std::vector<double> arrivalTime(150, -1.0);
    std::int32_t departures = 0;
    double last = 0;
    for (const ChurnEvent& event : a.events) {
      EXPECT_GE(event.time, last);
      last = event.time;
      EXPECT_GE(event.time, 0.0);
      EXPECT_LT(event.time, config.horizon);
      if (event.arrival) {
        EXPECT_EQ(arrivalTime[static_cast<std::size_t>(event.demand)], -1.0)
            << "one arrival per demand";
        arrivalTime[static_cast<std::size_t>(event.demand)] = event.time;
      } else {
        ++departures;
        EXPECT_GE(event.time,
                  arrivalTime[static_cast<std::size_t>(event.demand)]);
      }
    }
    for (const double t : arrivalTime) {
      EXPECT_GE(t, 0.0) << "every demand arrives";
    }
    EXPECT_GT(departures, 0);
    EXPECT_LT(departures, 150);
  }
}

TEST(ArrivalTraces, FlashCrowdConcentratesArrivalsInTheBurst) {
  ArrivalConfig config = sweepArrivals(ArrivalModel::FlashCrowd, 17);
  config.burstFraction = 0.7;
  const ChurnTrace trace = generateChurnTrace(config, 400);
  const double begin =
      config.horizon * (config.burstCenter - 0.5 * config.burstWidth);
  const double end =
      config.horizon * (config.burstCenter + 0.5 * config.burstWidth);
  std::int32_t inBurst = 0;
  for (const ChurnEvent& event : trace.events) {
    if (event.arrival && event.time >= begin && event.time <= end) {
      ++inBurst;
    }
  }
  // ~70% burst members plus the uniform stragglers that happen to land
  // inside the window; well above half in any case.
  EXPECT_GT(inBurst, 200);
}

TEST(ArrivalTraces, DiurnalWaveModulatesArrivalIntensity) {
  ArrivalConfig config = sweepArrivals(ArrivalModel::Diurnal, 23);
  config.waves = 2.0;
  config.waveDepth = 0.9;
  const ChurnTrace trace = generateChurnTrace(config, 600);
  // sin(2 pi * 2 * t / H) is positive on (0, H/4) and (H/2, 3H/4): the
  // two daytime peaks must collect clearly more arrivals than the two
  // troughs.
  std::int32_t peak = 0;
  std::int32_t trough = 0;
  for (const ChurnEvent& event : trace.events) {
    if (!event.arrival) continue;
    const double phase = event.time / config.horizon;
    const bool inPeak =
        (phase < 0.25) || (phase >= 0.5 && phase < 0.75);
    (inPeak ? peak : trough) += 1;
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(ArrivalTraces, ValidatesConfig) {
  ArrivalConfig config;
  config.horizon = 0;
  EXPECT_THROW(generateChurnTrace(config, 4), CheckError);
  config = {};
  config.meanLifetime = -1;
  EXPECT_THROW(generateChurnTrace(config, 4), CheckError);
  config = {};
  config.burstFraction = 1.5;
  EXPECT_THROW(generateChurnTrace(config, 4), CheckError);
  config = {};
  config.waveDepth = 1.0;
  EXPECT_THROW(generateChurnTrace(config, 4), CheckError);
}

TEST(EpochBatcher, NetsIntraWindowPairsAndPreservesOrder) {
  ChurnTrace trace;
  trace.horizon = 30.0;
  // Demand 2 arrives and departs inside window [0, 10): never admitted.
  trace.events = {
      {1.0, 2, true},  {2.0, 0, true},   {6.5, 2, false},
      {12.0, 1, true}, {14.0, 0, false}, {25.0, 1, false},
  };
  const std::vector<EpochBatch> batches = batchTrace(trace, 10.0);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].arrivals, (std::vector<DemandId>{0}));
  EXPECT_TRUE(batches[0].departures.empty());
  EXPECT_EQ(batches[1].arrivals, (std::vector<DemandId>{1}));
  EXPECT_EQ(batches[1].departures, (std::vector<DemandId>{0}));
  EXPECT_TRUE(batches[2].arrivals.empty());
  EXPECT_EQ(batches[2].departures, (std::vector<DemandId>{1}));
}

}  // namespace
}  // namespace treesched
