#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace treesched {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBounded(13), 13u);
  }
}

TEST(Rng, NextBoundedCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.nextBounded(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.nextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  Rng a(5);
  const Rng child1 = a.fork(1);
  Rng b(5);
  const Rng child2 = b.fork(1);
  Rng c1 = child1;
  Rng c2 = child2;
  EXPECT_EQ(c1(), c2());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(KeyedHash, StableAndSensitive) {
  EXPECT_EQ(keyedHash(1, 2, 3), keyedHash(1, 2, 3));
  EXPECT_NE(keyedHash(1, 2, 3), keyedHash(1, 3, 2));
  EXPECT_NE(keyedHash(1, 2, 3), keyedHash(2, 2, 3));
}

TEST(Check, ThrowsWithMessage) {
  try {
    checkThat(false, "something went wrong", __FILE__, __LINE__);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("something went wrong"),
              std::string::npos);
  }
}

TEST(Check, IndexBounds) {
  EXPECT_NO_THROW(checkIndex(0, 5, "idx"));
  EXPECT_NO_THROW(checkIndex(4, 5, "idx"));
  EXPECT_THROW(checkIndex(5, 5, "idx"), CheckError);
  EXPECT_THROW(checkIndex(-1, 5, "idx"), CheckError);
}

TEST(Table, RendersMarkdown) {
  Table t({"a", "bb"});
  t.row().cell(1).cell("x");
  const std::string s = t.toString();
  EXPECT_NE(s.find("| a | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 1 | x  |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), CheckError);
}

TEST(Table, DoubleFormatting) {
  EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(formatDouble(2.0, 3), "2.000");
}

TEST(Summary, Moments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), CheckError);
}

TEST(Cli, ParsesTypes) {
  CliFlags flags;
  flags.intFlag("n", 10, "count")
      .doubleFlag("eps", 0.5, "epsilon")
      .boolFlag("verbose", false, "talk")
      .stringFlag("name", "x", "label");
  const char* argv[] = {"prog", "--n=42", "--eps", "0.25", "--verbose",
                        "--name=abc"};
  ASSERT_TRUE(flags.parse(6, argv));
  EXPECT_EQ(flags.getInt("n"), 42);
  EXPECT_DOUBLE_EQ(flags.getDouble("eps"), 0.25);
  EXPECT_TRUE(flags.getBool("verbose"));
  EXPECT_EQ(flags.getString("name"), "abc");
}

TEST(Cli, UnknownFlagThrows) {
  CliFlags flags;
  flags.intFlag("n", 1, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, argv), CheckError);
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags flags;
  flags.intFlag("n", 1, "count");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

}  // namespace
}  // namespace treesched
