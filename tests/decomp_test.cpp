#include <gtest/gtest.h>

#include <cmath>

#include "decomp/tree_decomposition.hpp"
#include "gen/tree_gen.hpp"
#include "test_fixtures.hpp"
#include "util/rng.hpp"

namespace treesched {
namespace {

using testing::P;
using testing::paperExampleTree;

std::int32_t ceilLog2(std::int32_t n) {
  std::int32_t k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

// ---- Root-fixing (§4.2) ----

TEST(RootFixing, IsValidDecomposition) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = rootFixingDecomposition(t, P(1));
  EXPECT_EQ(checkTreeDecomposition(t, h), "");
}

TEST(RootFixing, PivotSizeIsOne) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = rootFixingDecomposition(t, P(1));
  EXPECT_EQ(pivotSize(t, h), 1);
}

TEST(RootFixing, PathTreeDepthIsN) {
  const TreeNetwork t = makePathTree(0, 16);
  const TreeDecomposition h = rootFixingDecomposition(t, 0);
  EXPECT_EQ(h.maxDepth(), 16);
}

TEST(RootFixing, PaperCaptureNode) {
  // Appendix A: rooted at node 1, demand <4,13> is captured at node 2.
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = rootFixingDecomposition(t, P(1));
  EXPECT_EQ(captureNode(t, h, P(4), P(13)), P(2));
}

// ---- Balancing (§4.2) ----

TEST(Balancing, IsValidDecomposition) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = balancingDecomposition(t);
  EXPECT_EQ(checkTreeDecomposition(t, h), "");
}

TEST(Balancing, DepthLogarithmic) {
  const TreeNetwork t = makePathTree(0, 1024);
  const TreeDecomposition h = balancingDecomposition(t);
  EXPECT_LE(h.maxDepth(), ceilLog2(1024) + 1);
}

TEST(Balancing, PivotBoundedByDepth) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = balancingDecomposition(t);
  EXPECT_LE(pivotSize(t, h), h.maxDepth());
}

// ---- Ideal (§4.3, Lemma 4.1) ----

TEST(Ideal, IsValidDecompositionOnPaperTree) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = idealDecomposition(t);
  EXPECT_EQ(checkTreeDecomposition(t, h), "");
  EXPECT_LE(pivotSize(t, h), 2);
  EXPECT_LE(h.maxDepth(), 2 * ceilLog2(14) + 1);
}

TEST(Ideal, SingleVertex) {
  const TreeNetwork t(0, 1, {});
  const TreeDecomposition h = idealDecomposition(t);
  EXPECT_EQ(h.maxDepth(), 1);
}

TEST(Ideal, TwoVertices) {
  const TreeNetwork t(0, 2, {{0, 1}});
  const TreeDecomposition h = idealDecomposition(t);
  EXPECT_EQ(checkTreeDecomposition(t, h), "");
  EXPECT_LE(pivotSize(t, h), 2);
}

// Lemma 4.1 property sweep: for every shape, size and seed, the ideal
// decomposition must be a valid tree decomposition with theta <= 2 and
// depth <= 2 ceil(lg n) + 1.
struct DecompCase {
  TreeShape shape;
  std::int32_t n;
  std::uint64_t seed;
};

class IdealDecompositionTest : public ::testing::TestWithParam<DecompCase> {};

TEST_P(IdealDecompositionTest, Lemma41Properties) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  const TreeNetwork t = generateTree(param.shape, 0, param.n, rng);
  const TreeDecomposition h = idealDecomposition(t);
  EXPECT_EQ(checkTreeDecomposition(t, h), "");
  EXPECT_LE(pivotSize(t, h), 2) << "pivot size exceeds Lemma 4.1 bound";
  EXPECT_LE(h.maxDepth(), 2 * ceilLog2(param.n) + 1)
      << "depth exceeds Lemma 4.1 bound";
}

INSTANTIATE_TEST_SUITE_P(
    Gallery, IdealDecompositionTest,
    ::testing::Values(
        DecompCase{TreeShape::UniformRandom, 3, 1},
        DecompCase{TreeShape::UniformRandom, 7, 2},
        DecompCase{TreeShape::UniformRandom, 30, 3},
        DecompCase{TreeShape::UniformRandom, 64, 4},
        DecompCase{TreeShape::UniformRandom, 200, 5},
        DecompCase{TreeShape::RandomAttachment, 50, 6},
        DecompCase{TreeShape::RandomAttachment, 150, 7},
        DecompCase{TreeShape::Path, 5, 8}, DecompCase{TreeShape::Path, 100, 9},
        DecompCase{TreeShape::Star, 50, 10},
        DecompCase{TreeShape::Caterpillar, 60, 11},
        DecompCase{TreeShape::Spider, 61, 12},
        DecompCase{TreeShape::BalancedBinary, 127, 13}),
    [](const ::testing::TestParamInfo<DecompCase>& info) {
      return treeShapeName(info.param.shape) + "_" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

// Many random seeds on moderate trees — the ideal construction has the
// subtlest case analysis (junctions), so hammer it.
TEST(Ideal, RandomSeedSweep) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 7919 + 1);
    const std::int32_t n = 5 + static_cast<std::int32_t>(rng.nextBounded(60));
    const TreeNetwork t = generateTree(TreeShape::UniformRandom, 0, n, rng);
    const TreeDecomposition h = idealDecomposition(t);
    ASSERT_EQ(checkTreeDecomposition(t, h), "")
        << "seed " << seed << " n " << n;
    ASSERT_LE(pivotSize(t, h), 2) << "seed " << seed << " n " << n;
    ASSERT_LE(h.maxDepth(), 2 * ceilLog2(n) + 1)
        << "seed " << seed << " n " << n;
  }
}

// ---- Capture nodes ----

TEST(CaptureNode, UniqueMinimalDepth) {
  const TreeNetwork t = paperExampleTree();
  const TreeDecomposition h = idealDecomposition(t);
  // The capture node is on the path and has strictly the least depth among
  // path vertices (uniqueness follows from the LCA property).
  for (const auto& [u, v] : std::vector<std::pair<VertexId, VertexId>>{
           {P(4), P(13)}, {P(7), P(14)}, {P(11), P(12)}, {P(1), P(10)}}) {
    const VertexId mu = captureNode(t, h, u, v);
    EXPECT_TRUE(t.onPath(mu, u, v));
    int atMinDepth = 0;
    for (const VertexId x : t.pathVertices(u, v)) {
      if (h.depth[static_cast<std::size_t>(x)] ==
          h.depth[static_cast<std::size_t>(mu)]) {
        ++atMinDepth;
      }
      EXPECT_GE(h.depth[static_cast<std::size_t>(x)],
                h.depth[static_cast<std::size_t>(mu)]);
    }
    EXPECT_EQ(atMinDepth, 1);
  }
}

// ---- Decomposition comparison (the §4.2 trade-off table) ----

TEST(DecompositionKinds, TradeoffsOnPath) {
  const TreeNetwork t = makePathTree(0, 256);
  const TreeDecomposition rf = rootFixingDecomposition(t);
  const TreeDecomposition bal = balancingDecomposition(t);
  const TreeDecomposition ideal = idealDecomposition(t);
  // Root-fixing: deep but theta = 1.
  EXPECT_EQ(rf.maxDepth(), 256);
  EXPECT_EQ(pivotSize(t, rf), 1);
  // Balancing: shallow but theta can exceed 2.
  EXPECT_LE(bal.maxDepth(), 9);
  // Ideal: shallow AND theta <= 2.
  EXPECT_LE(ideal.maxDepth(), 2 * 8 + 1);
  EXPECT_LE(pivotSize(t, ideal), 2);
}

TEST(DecompositionKinds, BuildDispatch) {
  const TreeNetwork t = makePathTree(0, 32);
  EXPECT_EQ(buildDecomposition(t, DecompositionKind::RootFixing).maxDepth(),
            32);
  EXPECT_LE(buildDecomposition(t, DecompositionKind::Balancing).maxDepth(), 6);
  EXPECT_LE(pivotSize(t, buildDecomposition(t, DecompositionKind::Ideal)), 2);
}

TEST(DecompositionKinds, Names) {
  EXPECT_EQ(decompositionKindName(DecompositionKind::RootFixing),
            "root-fixing");
  EXPECT_EQ(decompositionKindName(DecompositionKind::Balancing), "balancing");
  EXPECT_EQ(decompositionKindName(DecompositionKind::Ideal), "ideal");
}

// checkTreeDecomposition must itself detect violations (meta-test).
TEST(DecompositionChecker, DetectsBrokenLcaProperty) {
  const TreeNetwork t = makePathTree(0, 4);  // 0-1-2-3
  // H: root 1 with children 0 and 3, 3's child 2. C(3) = {3,2} is
  // connected, but path 2--3 misses H-lca(2,3)=3? No — break property (i):
  // H-lca(0, 2) = 1 which lies on path 0--2 (fine), but H-lca(2, 0)... use
  // root 2 with children 0,1,3: C(z) connectivity breaks for z=0? C(0)={0}
  // connected. Pick H: root 0, children 2; 2's children 1,3. Then
  // C(2)={1,2,3} connected, C(1)={1} fine; property (i): H-lca(1,0)=0 on
  // path 1--0? path 1--0 = {1,0} contains 0: fine. H-lca(3,1)=2 on path
  // 1--2--3: fine. H-lca(1,2)=2 on path {1,2}: fine.
  // Break it instead with root 3, children {0}, 0's children {1,2}:
  // C(0)={0,1,2} connected; H-lca(1,2)=0, but path 1--2 = {1,2} misses 0.
  std::vector<VertexId> parent{3, 0, 0, kNoVertex};
  const TreeDecomposition h = finalizeDecomposition(0, 3, std::move(parent));
  EXPECT_NE(checkTreeDecomposition(t, h), "");
}

TEST(DecompositionChecker, DetectsDisconnectedComponent) {
  const TreeNetwork t = makeStarTree(0, 4);  // center 0, leaves 1,2,3
  // H: root 0, child 1, 1's child 2, 2's child 3. C(1) = {1,2,3} is NOT
  // connected in the star without the center.
  std::vector<VertexId> parent{kNoVertex, 0, 1, 2};
  const TreeDecomposition h = finalizeDecomposition(0, 0, std::move(parent));
  EXPECT_NE(checkTreeDecomposition(t, h), "");
}

}  // namespace
}  // namespace treesched
