#include <gtest/gtest.h>

#include <algorithm>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "dist/sim_network.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

TreeProblem treeCase(std::uint64_t seed, std::int32_t n, std::int32_t m,
                     std::int32_t r, double accessProb = 0.7) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = r;
  cfg.demands.numDemands = m;
  cfg.demands.accessProbability = accessProb;
  cfg.demands.profitMax = 8.0;
  return makeTreeScenario(cfg);
}

// ---- SimNetwork ----

TEST(SimNetwork, DeliversToNeighborsNextRound) {
  SimNetwork net({{1}, {0, 2}, {1}});
  net.broadcast({MessageKind::MisActive, 1, 42, 0.0});
  net.endRound();
  EXPECT_EQ(net.inbox(0).size(), 1u);
  EXPECT_EQ(net.inbox(2).size(), 1u);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.inbox(0)[0].instance, 42);
  EXPECT_EQ(net.stats().rounds, 1);
  EXPECT_EQ(net.stats().messages, 2);
}

TEST(SimNetwork, InboxClearedEachRound) {
  SimNetwork net({{1}, {0}});
  net.broadcast({MessageKind::MisActive, 0, 1, 0.0});
  net.endRound();
  EXPECT_EQ(net.inbox(1).size(), 1u);
  net.endRound();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(SimNetwork, RejectsAsymmetricGraph) {
  EXPECT_THROW(SimNetwork({{1}, {}}), CheckError);
}

TEST(SimNetwork, RejectsSelfLoop) {
  std::vector<std::vector<std::int32_t>> adjacency{{0}};
  EXPECT_THROW(SimNetwork net(std::move(adjacency)), CheckError);
}

TEST(SimNetwork, SilentRoundsCount) {
  SimNetwork net({{1}, {0}});
  net.endSilentRounds(5);
  EXPECT_EQ(net.stats().rounds, 5);
  EXPECT_EQ(net.stats().busyRounds, 0);
}

TEST(SimNetwork, InboxSortedCanonically) {
  SimNetwork net({{2}, {2}, {0, 1}});
  net.broadcast({MessageKind::MisActive, 1, 9, 0.0});
  net.broadcast({MessageKind::MisActive, 0, 3, 0.0});
  net.endRound();
  const auto inbox = net.inbox(2);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].instance, 3);
  EXPECT_EQ(inbox[1].instance, 9);
}

// ---- Communication graph ----

TEST(CommunicationGraph, SharedResourceMeansEdge) {
  // p0 on {0}, p1 on {0,1}, p2 on {1}: p0-p1 and p1-p2, not p0-p2.
  const auto adj = communicationGraph({{0}, {0, 1}, {1}}, 2);
  EXPECT_EQ(adj[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adj[1], (std::vector<std::int32_t>{0, 2}));
  EXPECT_EQ(adj[2], (std::vector<std::int32_t>{1}));
}

TEST(CommunicationGraph, NoDuplicateEdges) {
  // Sharing two resources still yields one adjacency entry.
  const auto adj = communicationGraph({{0, 1}, {0, 1}}, 2);
  EXPECT_EQ(adj[0], (std::vector<std::int32_t>{1}));
}

TEST(CommunicationGraph, EmptyAccessListIsIsolated) {
  // A demand accessing nothing shares no network: isolated vertex, and
  // it must not perturb anyone else's adjacency.
  const auto adj = communicationGraph({{0}, {}, {0}}, 1);
  EXPECT_EQ(adj[0], (std::vector<std::int32_t>{2}));
  EXPECT_TRUE(adj[1].empty());
  EXPECT_EQ(adj[2], (std::vector<std::int32_t>{0}));
}

TEST(CommunicationGraph, AllDemandsIsolatedYieldsEmptyGraph) {
  const auto adj = communicationGraph({{}, {}}, 3);
  EXPECT_TRUE(adj[0].empty());
  EXPECT_TRUE(adj[1].empty());
}

TEST(CommunicationGraph, DemandAccessingEveryNetworkNeighborsAll) {
  // p1 touches every network, so it is adjacent to every other demand —
  // exactly once each, with no self loop.
  const auto adj = communicationGraph({{0}, {0, 1, 2}, {1}, {2}}, 3);
  EXPECT_EQ(adj[1], (std::vector<std::int32_t>{0, 2, 3}));
  EXPECT_EQ(adj[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adj[2], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adj[3], (std::vector<std::int32_t>{1}));
}

TEST(CommunicationGraph, DuplicateNetworkIdsCollapse) {
  // Repeated ids in an access list must not duplicate edges or create
  // self loops; the result must be valid transport adjacency.
  const auto adj = communicationGraph({{0, 0, 0}, {0, 0}}, 1);
  EXPECT_EQ(adj[0], (std::vector<std::int32_t>{1}));
  EXPECT_EQ(adj[1], (std::vector<std::int32_t>{0}));
  validateCommunicationAdjacency(adj);
}

TEST(CommunicationGraph, RejectsOutOfRangeNetworkId) {
  EXPECT_THROW(communicationGraph({{2}}, 2), CheckError);
  EXPECT_THROW(communicationGraph({{-1}}, 2), CheckError);
}

// ---- Protocol: equivalence with the centralized engine (E11) ----

struct EquivCase {
  std::uint64_t seed;
  std::int32_t n;
  std::int32_t m;
  std::int32_t r;
};

class DistEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DistEquivalenceTest, BitIdenticalToCentralizedFixedSchedule) {
  const auto& param = GetParam();
  const TreeProblem problem = treeCase(param.seed, param.n, param.m, param.r);

  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  const TreeLayeringResult layering = buildTreeLayering(problem, universe);

  DistributedOptions dopt;
  dopt.seed = 99 + param.seed;
  dopt.misRoundBudget = 40;
  dopt.stepsPerStage = 12;
  const DistributedResult dist = runDistributedUnitTree(problem, dopt);

  FrameworkConfig copt;
  copt.seed = dopt.seed;
  copt.misRoundBudget = dopt.misRoundBudget;
  copt.fixedSchedule = true;
  copt.stepsPerStage = dopt.stepsPerStage;
  const TwoPhaseResult central = runTwoPhase(universe, layering.layering, copt);

  // The distributed result is collected sorted; acceptance order differs.
  std::vector<InstanceId> centralSorted = central.solution.instances;
  std::sort(centralSorted.begin(), centralSorted.end());
  EXPECT_EQ(dist.solution.instances, centralSorted)
      << "distributed and centralized runs must select identical instances";
  EXPECT_DOUBLE_EQ(dist.profit, central.profit);
  EXPECT_DOUBLE_EQ(dist.dualObjective, central.dualObjective);
  EXPECT_DOUBLE_EQ(dist.lambdaMeasured, central.stats.lambdaMeasured);
  EXPECT_TRUE(dist.localViewsConsistent)
      << "every processor's local dual view must agree with ground truth";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistEquivalenceTest,
    ::testing::Values(EquivCase{1, 16, 12, 2}, EquivCase{2, 24, 20, 3},
                      EquivCase{3, 12, 8, 1}, EquivCase{4, 32, 25, 2},
                      EquivCase{5, 20, 30, 4}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return "s" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_r" +
             std::to_string(info.param.r);
    });

TEST(DistProtocol, LineEquivalence) {
  LineScenarioConfig cfg;
  cfg.seed = 7;
  cfg.numSlots = 32;
  cfg.numResources = 2;
  cfg.demands.numDemands = 15;
  cfg.demands.windowSlack = 0.5;
  cfg.demands.processingMax = 6;
  cfg.demands.accessProbability = 0.8;
  const LineProblem problem = makeLineScenario(cfg);

  InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
  universe.buildConflicts();
  const Layering layering = buildLineLayering(universe);

  DistributedOptions dopt;
  dopt.seed = 5;
  dopt.misRoundBudget = 40;
  dopt.stepsPerStage = 12;
  const DistributedResult dist = runDistributedUnitLine(problem, dopt);

  FrameworkConfig copt;
  copt.seed = 5;
  copt.misRoundBudget = 40;
  copt.fixedSchedule = true;
  copt.stepsPerStage = 12;
  const TwoPhaseResult central = runTwoPhase(universe, layering, copt);

  std::vector<InstanceId> centralSorted = central.solution.instances;
  std::sort(centralSorted.begin(), centralSorted.end());
  EXPECT_EQ(dist.solution.instances, centralSorted);
  EXPECT_DOUBLE_EQ(dist.profit, central.profit);
  EXPECT_TRUE(dist.localViewsConsistent);
}

// ---- Protocol: guarantees on its own ----

TEST(DistProtocol, SolutionFeasibleAndLambdaReached) {
  const TreeProblem problem = treeCase(11, 24, 20, 2);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  DistributedOptions opt;
  opt.epsilon = 0.2;
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  requireFeasible(universe, result.solution);
  EXPECT_GE(result.lambdaMeasured, result.lambdaTarget - 1e-9)
      << "the fixed schedule must still reach (1-eps)-satisfaction";
  EXPECT_GE(result.dualUpperBound, result.profit - 1e-9);
}

TEST(DistProtocol, MessageSizeIsConstantInM) {
  const TreeProblem problem = treeCase(12, 24, 25, 3);
  const DistributedResult result = runDistributedUnitTree(problem);
  // O(M) message size: every message is at most 2 units (DualRaise).
  EXPECT_LE(result.network.maxMessagePayload, 2);
  EXPECT_GT(result.network.messages, 0);
}

TEST(DistProtocol, RoundsMatchScheduleShape) {
  const TreeProblem problem = treeCase(13, 16, 12, 2);
  DistributedOptions opt;
  opt.misRoundBudget = 10;
  opt.stepsPerStage = 6;
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  // Phase 1 contributes scheduledSteps * (2B + 1); phase 2 one round per
  // tuple.
  const std::int64_t expected =
      result.scheduledSteps * (2 * 10 + 1) + result.scheduledSteps;
  EXPECT_EQ(result.network.rounds, expected);
  EXPECT_LE(result.network.busyRounds, result.network.rounds);
  EXPECT_GT(result.activeSteps, 0);
  EXPECT_LE(result.activeSteps, result.scheduledSteps);
}

TEST(DistProtocol, DisconnectedProcessorsStillScheduled) {
  // Two demands on disjoint resources: no communication possible, but both
  // can be scheduled independently.
  TreeProblem problem;
  problem.numVertices = 4;
  problem.networks.push_back(makePathTree(0, 4));
  problem.networks.push_back(makePathTree(1, 4));
  Demand d0;
  d0.id = 0;
  d0.u = 0;
  d0.v = 2;
  Demand d1;
  d1.id = 1;
  d1.u = 1;
  d1.v = 3;
  problem.demands = {d0, d1};
  problem.access = {{0}, {1}};
  const DistributedResult result = runDistributedUnitTree(problem);
  EXPECT_EQ(result.solution.instances.size(), 2u);
  EXPECT_EQ(result.network.messages, 0) << "no neighbours, no messages";
}

TEST(DistProtocol, DeterministicAcrossRuns) {
  const TreeProblem problem = treeCase(14, 20, 16, 2);
  const DistributedResult a = runDistributedUnitTree(problem);
  const DistributedResult b = runDistributedUnitTree(problem);
  EXPECT_EQ(a.solution.instances, b.solution.instances);
  EXPECT_EQ(a.network.messages, b.network.messages);
  EXPECT_EQ(a.network.rounds, b.network.rounds);
}

TEST(DistProtocol, NarrowRuleRuns) {
  TreeScenarioConfig cfg;
  cfg.seed = 15;
  cfg.numVertices = 16;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 14;
  cfg.demands.heights = HeightMode::Narrow;
  cfg.demands.hmin = 0.25;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
  universe.buildConflicts();
  DistributedOptions opt;
  opt.rule = RaiseRule::Narrow;
  opt.hmin = 0.25;
  const DistributedResult result = runDistributedUnitTree(problem, opt);
  requireFeasible(universe, result.solution);
  EXPECT_GE(result.lambdaMeasured, result.lambdaTarget - 1e-9);
  EXPECT_TRUE(result.localViewsConsistent);
}

}  // namespace
}  // namespace treesched
