#include <gtest/gtest.h>

#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "exact/greedy.hpp"
#include "exact/line_dp.hpp"
#include "gen/scenario.hpp"
#include "util/check.hpp"

namespace treesched {
namespace {

// Figure 1's scenario: A=[~0.5 region], B, C with heights 0.5/0.7/0.4 —
// {A,C} and {B,C} fit, {A,B} does not.
LineProblem figureOneProblem() {
  LineProblem problem;
  problem.numSlots = 10;
  problem.numResources = 1;
  // A: slots 0..5 h=0.5; B: slots 2..7 h=0.7; C: slots 8..9 h=0.4.
  // {A,C} and {B,C} are feasible; {A,B} overlaps with 0.5+0.7 > 1.
  problem.demands = {makeIntervalDemand(0, 0, 5, 5.0, 0.5),
                     makeIntervalDemand(1, 2, 7, 4.0, 0.7),
                     makeIntervalDemand(2, 8, 9, 3.0, 0.4)};
  problem.access = fullLineAccess(3, 1);
  problem.validate();
  return problem;
}

TEST(BruteForce, FigureOneOptimum) {
  const LineProblem problem = figureOneProblem();
  InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
  const ExactResult result = bruteForceExact(u);
  EXPECT_TRUE(result.provedOptimal);
  // Best: {A, C} with profit 8 (A+B violates capacity on slots 2..5).
  EXPECT_DOUBLE_EQ(result.profit, 8.0);
  requireFeasible(u, result.solution);
}

TEST(BruteForce, UnitHeightTreeSmall) {
  TreeScenarioConfig cfg;
  cfg.seed = 3;
  cfg.numVertices = 10;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 8;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult result = bruteForceExact(u);
  EXPECT_TRUE(result.provedOptimal);
  requireFeasible(u, result.solution);
  EXPECT_GT(result.profit, 0);
}

TEST(BruteForce, OptimumDominatesGreedy) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TreeScenarioConfig cfg;
    cfg.seed = seed;
    cfg.numVertices = 12;
    cfg.numNetworks = 2;
    cfg.demands.numDemands = 10;
    cfg.demands.heights = HeightMode::Mixed;
    cfg.demands.hmin = 0.2;
    const TreeProblem problem = makeTreeScenario(cfg);
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    const ExactResult exact = bruteForceExact(u);
    const GreedyResult greedy = greedyByProfit(u);
    ASSERT_TRUE(exact.provedOptimal);
    EXPECT_GE(exact.profit, greedy.profit - 1e-9) << "seed " << seed;
  }
}

TEST(BruteForce, BudgetExhaustionFlagged) {
  TreeScenarioConfig cfg;
  cfg.seed = 4;
  cfg.numVertices = 16;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 20;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const ExactResult result = bruteForceExact(u, /*nodeBudget=*/50);
  EXPECT_FALSE(result.provedOptimal);
  // Best-so-far must still be feasible.
  requireFeasible(u, result.solution);
}

TEST(LineDp, MatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    LineScenarioConfig cfg;
    cfg.seed = seed;
    cfg.numSlots = 30;
    cfg.numResources = 1;
    cfg.demands.numDemands = 12;
    cfg.demands.processingMax = 8;
    cfg.demands.windowSlack = 0.0;
    const LineProblem problem = makeLineScenario(cfg);
    const LineDpResult dp = lineDpExact(problem);
    InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
    const ExactResult bf = bruteForceExact(u);
    ASSERT_TRUE(bf.provedOptimal);
    EXPECT_NEAR(dp.profit, bf.profit, 1e-9) << "seed " << seed;
    EXPECT_EQ(checkAssignments(problem, dp.assignments), "");
    EXPECT_NEAR(assignmentProfit(problem, dp.assignments), dp.profit, 1e-9);
  }
}

TEST(LineDp, RejectsMultiResource) {
  LineProblem problem;
  problem.numSlots = 4;
  problem.numResources = 2;
  problem.demands = {makeIntervalDemand(0, 0, 1, 1.0)};
  problem.access = fullLineAccess(1, 2);
  EXPECT_THROW(lineDpExact(problem), CheckError);
}

TEST(LineDp, RejectsWindows) {
  LineProblem problem;
  problem.numSlots = 8;
  problem.numResources = 1;
  WindowDemand d;
  d.id = 0;
  d.release = 0;
  d.deadline = 5;
  d.processing = 2;  // slack: window longer than processing
  problem.demands = {d};
  problem.access = fullLineAccess(1, 1);
  EXPECT_THROW(lineDpExact(problem), CheckError);
}

TEST(LineDp, EmptyProblemThrowsNothingWithOneDemand) {
  LineProblem problem;
  problem.numSlots = 3;
  problem.numResources = 1;
  problem.demands = {makeIntervalDemand(0, 1, 2, 2.5)};
  problem.access = fullLineAccess(1, 1);
  const LineDpResult dp = lineDpExact(problem);
  EXPECT_DOUBLE_EQ(dp.profit, 2.5);
  ASSERT_EQ(dp.assignments.size(), 1u);
  EXPECT_EQ(dp.assignments[0].start, 1);
}

TEST(Greedy, FeasibleAndDeterministic) {
  TreeScenarioConfig cfg;
  cfg.seed = 5;
  cfg.numVertices = 20;
  cfg.numNetworks = 2;
  cfg.demands.numDemands = 30;
  const TreeProblem problem = makeTreeScenario(cfg);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  const GreedyResult a = greedyByProfit(u);
  const GreedyResult b = greedyByProfit(u);
  requireFeasible(u, a.solution);
  EXPECT_EQ(a.solution.instances, b.solution.instances);
}

TEST(FeasibilityOracle, AddRemoveRoundTrip) {
  const LineProblem problem = figureOneProblem();
  InstanceUniverse u = InstanceUniverse::fromLineProblem(problem);
  FeasibilityOracle oracle(u);
  ASSERT_TRUE(oracle.canAdd(0));
  oracle.add(0);
  EXPECT_FALSE(oracle.canAdd(1));  // A+B over capacity
  EXPECT_TRUE(oracle.canAdd(2));   // A+C fine
  oracle.remove(0);
  EXPECT_TRUE(oracle.canAdd(1));
  EXPECT_DOUBLE_EQ(oracle.profit(), 0.0);
}

}  // namespace
}  // namespace treesched
