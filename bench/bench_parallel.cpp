// Experiment E13 — the deterministic thread-parallel execution engine
// over the flat message plane (engine/parallel_runner.hpp,
// engine/message_plane.hpp).
//
// Runs the production-scale presets (metro_line_100k, cdn_tree_250k)
// across thread counts and reports the speedup curve, while verifying
// that every thread count reproduces the 1-thread solution bit for bit.
// Allocation discipline is measured two ways: a process-wide operator
// new counter around each run (heap allocations per round), and the
// message plane's own growth accounting (growth events and the last
// round that grew a buffer — every later round ran allocation-free).
// Emits BENCH_parallel.json next to the table; CI uploads it with the
// other bench reports.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <new>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "dist/protocol.hpp"
#include "dist/sim_network.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

// ---- Process-wide allocation counter ----------------------------------
// Replacing the global operator new is safe in this standalone binary and
// gives the ground-truth "heap allocations during the round loop" number
// the flat message plane exists to eliminate.

namespace {
std::atomic<std::int64_t> gHeapAllocs{0};
}  // namespace

void* operator new(std::size_t size) {
  gHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace treesched;

namespace {

double wallMs(std::chrono::steady_clock::time_point begin,
              std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

struct PresetRun {
  std::string preset;
  std::int32_t demands = 0;
  std::int32_t instances = 0;
  std::int32_t threads = 0;
  /// More worker threads than physical cores: the speedup column is
  /// scheduler noise, not engine scaling, so the table suppresses it
  /// (the JSON keeps the raw number plus this flag).
  bool oversubscribed = false;
  double wallMs = 0;
  double speedup = 1.0;
  std::int64_t heapAllocs = 0;
  bool matchesSerial = true;
  DistributedResult result;
};

void report(Table& table, bench::JsonReport& json, const PresetRun& run) {
  const double allocsPerRound =
      run.result.network.rounds > 0
          ? static_cast<double>(run.heapAllocs) /
                static_cast<double>(run.result.network.rounds)
          : 0.0;
  // The headline number: the first-generation transports allocated at
  // least one heap block per delivered message per round; the flat plane
  // drives this ratio to ~0 (what remains is engine setup + phase-1
  // stack bookkeeping, amortized over the run).
  const double allocsPerMessage =
      run.result.network.messages > 0
          ? static_cast<double>(run.heapAllocs) /
                static_cast<double>(run.result.network.messages)
          : 0.0;
  Table::RowBuilder row = table.row();
  row.cell(run.preset).cell(run.demands).cell(run.threads).cell(run.wallMs, 1);
  if (run.oversubscribed) {
    row.cell("n/a");  // threads > cores: wall time is scheduler noise
  } else {
    row.cell(run.speedup, 2);
  }
  row.cell(run.result.network.rounds)
      .cell(run.result.network.messages)
      .cell(run.result.engineClaims)
      .cell(run.result.engineSteals)
      .cell(run.heapAllocs)
      .cell(allocsPerMessage, 3)
      .cell(run.result.network.planeGrowthEvents)
      .cell(run.result.network.planeLastGrowthRound)
      .cell(run.matchesSerial ? "yes" : "NO");
  json.row()
      .field("preset", run.preset)
      .field("demands", run.demands)
      .field("instances", run.instances)
      .field("threads", run.threads)
      // Speedup is bounded by the physical cores of the bench host; a
      // 1-core CI runner reports ~1.0 at every thread count by design.
      // `oversubscribed` marks rows where threads > cores — consumers
      // (and tools/bench_compare.py) must not read their speedup as an
      // engine-scaling signal.
      .field("hardware_threads",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()))
      .field("oversubscribed", run.oversubscribed)
      .field("wall_ms", run.wallMs)
      .field("speedup_vs_1_thread", run.speedup)
      .field("rounds", run.result.network.rounds)
      .field("messages", run.result.network.messages)
      .field("engine_claims", run.result.engineClaims)
      .field("engine_steals", run.result.engineSteals)
      .field("payload", run.result.network.payload)
      .field("profit", run.result.profit)
      .field("heap_allocs", run.heapAllocs)
      .field("heap_allocs_per_round", allocsPerRound)
      .field("heap_allocs_per_message", allocsPerMessage)
      .field("plane_growth_events", run.result.network.planeGrowthEvents)
      .field("plane_last_growth_round",
             run.result.network.planeLastGrowthRound)
      .field("consistent", run.result.localViewsConsistent)
      .field("matches_1_thread", run.matchesSerial);
}

void runPreset(const std::string& preset, PreparedRun prepared,
               std::int32_t demands, const DistributedOptions& baseOptions,
               const std::vector<std::int32_t>& threadCounts, Table& table,
               bench::JsonReport& json, bench::Telemetry& telemetry) {
  DistributedResult serial;
  double serialWallMs = 0;
  for (std::size_t i = 0; i < threadCounts.size(); ++i) {
    const std::int32_t threads = threadCounts[i];
    // The transport is rebuilt per run (fresh stats, fresh plane); the
    // adjacency copy happens outside the measured window.
    auto adjacency = prepared.adjacency;
    SimNetwork bus(std::move(adjacency));
    DistributedOptions options = baseOptions;
    options.threads = threads;
    // Telemetry is strictly opt-in here: the default run must keep its
    // heap-allocation ground truth undisturbed, so the registry is only
    // attached (and its instrument-resolution allocations paid) when the
    // user asked for it.
    MetricsRegistry metrics;
    options.tracer = telemetry.tracer();
    if (telemetry.printMetrics()) options.metrics = &metrics;

    const std::int64_t allocsBefore =
        gHeapAllocs.load(std::memory_order_relaxed);
    const auto begin = std::chrono::steady_clock::now();
    DistributedResult result = runDistributedOverTransport(
        prepared.universe, prepared.layering, bus, options);
    const auto end = std::chrono::steady_clock::now();

    PresetRun run;
    run.preset = preset;
    run.demands = demands;
    run.instances = prepared.universe.numInstances();
    run.threads = threads;
    const auto cores =
        static_cast<std::int32_t>(std::thread::hardware_concurrency());
    run.oversubscribed = cores > 0 && threads > cores;
    run.wallMs = wallMs(begin, end);
    run.heapAllocs =
        gHeapAllocs.load(std::memory_order_relaxed) - allocsBefore;
    run.result = std::move(result);
    if (i == 0) {
      serial = run.result;
      serialWallMs = run.wallMs;
      run.speedup = 1.0;
      run.matchesSerial = true;
    } else {
      run.speedup = run.wallMs > 0 ? serialWallMs / run.wallMs : 1.0;
      run.matchesSerial =
          run.result.solution.instances == serial.solution.instances &&
          run.result.profit == serial.profit &&
          run.result.dualObjective == serial.dualObjective;
    }
    if (telemetry.printMetrics()) std::cout << metrics.describe();
    report(table, json, run);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 1, "base RNG seed");
  flags.intFlag("line-demands", 100'000, "metro_line preset demand count");
  flags.intFlag("tree-demands", 250'000, "cdn_tree preset demand count");
  flags.intFlag("hotspot-demands", 50'000, "hotspot preset demand count");
  flags.intFlag("max-threads", 8, "largest thread count in the sweep");
  flags.stringFlag("json", "BENCH_parallel.json",
                   "machine-readable report path ('' disables)");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto lineDemands =
      static_cast<std::int32_t>(flags.getInt("line-demands"));
  const auto treeDemands =
      static_cast<std::int32_t>(flags.getInt("tree-demands"));
  const auto hotspotDemands =
      static_cast<std::int32_t>(flags.getInt("hotspot-demands"));
  const auto maxThreads =
      static_cast<std::int32_t>(flags.getInt("max-threads"));
  bench::Telemetry telemetry(flags);

  bench::banner(
      "E13",
      "the thread-parallel engine over the flat message plane is "
      "bit-identical to the serial engine at every thread count, and the "
      "round hot loop performs no per-message heap allocation",
      "'matches 1t' all 'yes'; speedup grows with threads on multi-core "
      "hardware (rows with threads > cores print 'n/a' — an oversubscribed "
      "run measures the OS scheduler, not the engine); plane growth stops "
      "after warmup (last growth round << rounds) and heap allocs per "
      "round stay O(1)");

  std::vector<std::int32_t> threadCounts;
  for (const std::int32_t t : {1, 2, 4, 8}) {
    if (t == 1 || t <= maxThreads) threadCounts.push_back(t);
  }

  Table table({"preset", "demands", "threads", "wall ms", "speedup", "rounds",
               "messages", "claims", "steals", "allocs", "allocs/msg",
               "plane growths", "last growth rnd", "matches 1t"});
  bench::JsonReport json(flags.getString("json"));

  DistributedOptions dopt;
  dopt.seed = seed + 7;
  dopt.epsilon = 0.3;
  dopt.misRoundBudget = 4;
  dopt.stepsPerStage = 2;

  {
    const LineProblem problem = makeMetroLine100k(seed, lineDemands);
    runPreset("metro_line_100k", prepareUnitLineRun(problem), lineDemands,
              dopt, threadCounts, table, json, telemetry);
  }
  {
    const TreeProblem problem = makeCdnTree250k(seed, treeDemands);
    runPreset("cdn_tree_250k", prepareUnitTreeRun(problem), treeDemands,
              dopt, threadCounts, table, json, telemetry);
  }
  {
    // The hotspot row family: the skew-heavy pool behind the online
    // hotspot preset, solved one-shot. Uneven per-demand instance counts
    // make this the row where cost-proportional (weighted) shard plans
    // and work-stealing claims matter — uniform plans leave whole
    // threads idle behind the hot shards (the steals column shows the
    // engine routing around them).
    const ChurnTreeScenario scenario = makeHotspotTree50k(seed,
                                                          hotspotDemands);
    runPreset("hotspot_tree_50k", prepareUnitTreeRun(scenario.pool),
              hotspotDemands, dopt, threadCounts, table, json, telemetry);
  }

  table.print(std::cout);
  if (!flags.getString("json").empty()) {
    json.write();
  }
  telemetry.finish();
  return 0;
}
