// Experiment E8 — sequential algorithm for trees (paper Appendix A).
//
// Delta = 2, lambda = 1 -> 3-approximation (2 for a single network).
// Measures the actual ratio against exact OPT on small instances and the
// dual certificate at scale, plus the iteration count (which, unlike the
// distributed algorithm, can reach |D|).
#include <iostream>

#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "seeds per configuration");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E8",
      "Appendix A: sequential two-phase algorithm with Delta = 2, lambda = 1 "
      "is a 3-approximation (2 for r = 1); round complexity can be as high "
      "as the number of instances",
      "'vs OPT' <= 3 (r > 1) / <= 2 (r = 1) on every exact row; iterations "
      "grow linearly with instances (contrast with E4's polylog rounds); "
      "sequential profit usually >= distributed profit (lambda = 1 vs 1-eps)");

  Table table({"n", "m", "r", "vs OPT", "OPT exact", "vs dual UB", "bound",
               "iterations", "instances", "seq profit", "dist profit"});

  struct Config {
    std::int32_t n, m, r;
  };
  const Config configs[] = {{12, 9, 1},  {12, 9, 2},   {24, 18, 2},
                            {64, 96, 1}, {64, 96, 3},  {256, 384, 3}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      TreeScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 982451653 + 61;
      cfg.numVertices = c.n;
      cfg.numNetworks = c.r;
      cfg.demands.numDemands = c.m;
      cfg.demands.accessProbability = 0.7;
      const TreeProblem problem = makeTreeScenario(cfg);

      const SequentialTreeResult seq = solveSequentialTree(problem);
      SolverOptions options;
      options.seed = cfg.seed + 1;
      const TreeSolveResult dist = solveUnitTree(problem, options);

      InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
      const bench::OptEstimate opt =
          c.m <= 18 ? bench::estimateOpt(universe)
                    : bench::OptEstimate{seq.profit, false};

      table.row()
          .cell(c.n)
          .cell(c.m)
          .cell(c.r)
          .cell(opt.exact ? formatDouble(opt.lowerBound / seq.profit, 3)
                          : std::string("-"))
          .cell(opt.exact ? "yes" : "no")
          .cell(seq.dualUpperBound / seq.profit, 3)
          .cell(seq.certifiedBound, 1)
          .cell(seq.iterations)
          .cell(universe.numInstances())
          .cell(seq.profit, 1)
          .cell(dist.profit, 1);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
