// Experiment E9 — Luby's MIS round complexity [Luby 1986].
//
// T_MIS is the multiplier in every round bound of the paper. The
// randomized algorithm finishes in O(log N) rounds w.h.p.; this harness
// measures rounds on conflict graphs of growing size and reports
// rounds / lg N, which must stay roughly constant.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/universe.hpp"
#include "framework/mis.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 8, "MIS seeds per graph");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E9",
      "Luby's randomized MIS finishes in O(log N) rounds w.h.p. [14]; the "
      "paper's budgets assume T_MIS = O(log N)",
      "'rounds/lgN' stays roughly constant (~0.5-1.5) as N grows 64x; max "
      "rounds well under the protocol's 4*lg N + 8 budget");

  Table table({"N (instances)", "max degree", "rounds mean", "rounds max",
               "rounds/lgN", "budget (4lgN+8)"});

  for (std::int32_t m = 64; m <= 4096; m *= 4) {
    TreeScenarioConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(m) + 71;
    cfg.numVertices = 48;
    cfg.numNetworks = 3;
    cfg.demands.numDemands = m;
    cfg.demands.accessProbability = 0.7;
    const TreeProblem problem = makeTreeScenario(cfg);
    InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
    universe.buildConflicts();

    std::vector<InstanceId> active(
        static_cast<std::size_t>(universe.numInstances()));
    for (InstanceId i = 0; i < universe.numInstances(); ++i) {
      active[static_cast<std::size_t>(i)] = i;
    }
    Summary rounds;
    for (std::int64_t s = 0; s < seeds; ++s) {
      const MisResult mis =
          lubyMis(universe, active, static_cast<std::uint64_t>(s) * 31 + 5);
      rounds.add(static_cast<double>(mis.rounds));
    }
    const double lg = std::log2(static_cast<double>(universe.numInstances()));
    table.row()
        .cell(universe.numInstances())
        .cell(universe.maxConflictDegree())
        .cell(rounds.mean(), 2)
        .cell(static_cast<std::int64_t>(rounds.max()))
        .cell(rounds.mean() / lg, 3)
        .cell(static_cast<std::int64_t>(4 * std::ceil(lg) + 8));
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
