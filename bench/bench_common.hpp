// Shared helpers for the experiment harnesses (DESIGN.md §4).
#pragma once

#include <iostream>
#include <string>

#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "util/table.hpp"

namespace treesched::bench {

/// Prints the experiment banner: id, the paper claim being regenerated and
/// what shape the numbers must have to count as reproduced.
inline void banner(const std::string& id, const std::string& claim,
                   const std::string& expectation) {
  std::cout << "\n=== Experiment " << id << " ===\n"
            << "claim:       " << claim << "\n"
            << "expectation: " << expectation << "\n\n";
}

/// Best available estimate of OPT: exact when branch-and-bound finishes in
/// budget, otherwise the max of the incumbent and nothing better — callers
/// then fall back to the dual upper bound for the ratio.
struct OptEstimate {
  double lowerBound = 0;  ///< best feasible solution found
  bool exact = false;
};

inline OptEstimate estimateOpt(const InstanceUniverse& universe,
                               std::int64_t nodeBudget = 5'000'000) {
  const ExactResult result = bruteForceExact(universe, nodeBudget);
  return {result.profit, result.provedOptimal};
}

}  // namespace treesched::bench
