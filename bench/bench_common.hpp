// Shared helpers for the experiment harnesses (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/universe.hpp"
#include "exact/brute_force.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace treesched::bench {

/// Prints the experiment banner: id, the paper claim being regenerated and
/// what shape the numbers must have to count as reproduced.
inline void banner(const std::string& id, const std::string& claim,
                   const std::string& expectation) {
  std::cout << "\n=== Experiment " << id << " ===\n"
            << "claim:       " << claim << "\n"
            << "expectation: " << expectation << "\n\n";
}

/// Best available estimate of OPT: exact when branch-and-bound finishes in
/// budget, otherwise the max of the incumbent and nothing better — callers
/// then fall back to the dual upper bound for the ratio.
struct OptEstimate {
  double lowerBound = 0;  ///< best feasible solution found
  bool exact = false;
};

inline OptEstimate estimateOpt(const InstanceUniverse& universe,
                               std::int64_t nodeBudget = 5'000'000) {
  const ExactResult result = bruteForceExact(universe, nodeBudget);
  return {result.profit, result.provedOptimal};
}

/// Machine-readable experiment report: an array of flat JSON objects,
/// written next to the human-readable table so the perf trajectory
/// (rounds, messages, retransmissions, virtual time, ...) can be tracked
/// across PRs. CI uploads every BENCH_*.json as a workflow artifact.
///
///   JsonReport report("BENCH_dist.json");
///   report.row().field("n", 16).field("rounds", stats.rounds);
///   report.write();  // also logs the path to stdout
class JsonReport {
 public:
  class Row {
   public:
    Row& field(const std::string& key, std::int64_t value) {
      return raw(key, std::to_string(value));
    }
    Row& field(const std::string& key, std::int32_t value) {
      return raw(key, std::to_string(value));
    }
    Row& field(const std::string& key, double value) {
      std::ostringstream os;
      os.precision(17);
      os << value;
      return raw(key, os.str());
    }
    Row& field(const std::string& key, bool value) {
      return raw(key, value ? "true" : "false");
    }
    Row& field(const std::string& key, const std::string& value) {
      std::string quoted = "\"";
      for (const char c : value) {
        if (c == '"' || c == '\\') quoted += '\\';
        quoted += c;
      }
      quoted += '"';
      return raw(key, quoted);
    }
    /// Embeds `rawJson` verbatim as the value — for pre-rendered JSON
    /// like MetricsRegistry::toJson() snapshots. The caller guarantees
    /// well-formedness.
    Row& jsonField(const std::string& key, const std::string& rawJson) {
      return raw(key, rawJson);
    }

   private:
    friend class JsonReport;
    Row& raw(const std::string& key, std::string rendered) {
      fields_.emplace_back(key, std::move(rendered));
      return *this;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  void write() const {
    std::ofstream out(path_);
    out << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "  {";
      const auto& fields = rows_[r].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        out << "\"" << fields[f].first << "\": " << fields[f].second;
        if (f + 1 < fields.size()) out << ", ";
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "wrote " << path_ << " (" << rows_.size() << " rows)\n";
  }

 private:
  std::string path_;
  std::vector<Row> rows_;
};

/// The --trace/--metrics wiring shared by every bench binary: addFlags()
/// registers the flags, the constructor opens the Chrome-trace sink when
/// --trace=FILE was given, tracer() hands the (possibly null) Tracer to
/// the run, and finish() flushes the trace file and logs its path.
///
///   CliFlags flags;
///   Telemetry::addFlags(flags);
///   ...
///   Telemetry telemetry(flags);
///   options.tracer = telemetry.tracer();
///   ...
///   telemetry.finish();
class Telemetry {
 public:
  static void addFlags(CliFlags& flags) {
    flags
        .stringFlag("trace", "",
                    "write a Chrome trace-event JSON of the run to FILE")
        .boolFlag("metrics", false,
                  "print a metrics-registry snapshot per run");
  }

  explicit Telemetry(const CliFlags& flags)
      : printMetrics_(flags.getBool("metrics")) {
    const std::string& path = flags.getString("trace");
    if (!path.empty()) {
      sink_ = std::make_unique<ChromeTraceSink>(path);
      tracer_ = Tracer(sink_.get());
    }
  }

  /// Tracer for the run, or nullptr when --trace was not given.
  Tracer* tracer() { return sink_ != nullptr ? &tracer_ : nullptr; }

  bool printMetrics() const { return printMetrics_; }

  /// Flushes the trace file (if any) and logs where it went.
  void finish() {
    if (sink_ != nullptr) {
      sink_->close();
      std::cout << "wrote " << sink_->path() << " (" << sink_->eventCount()
                << " trace events)\n";
    }
  }

 private:
  std::unique_ptr<ChromeTraceSink> sink_;
  Tracer tracer_;
  bool printMetrics_ = false;
};

/// For experiments that only exercise the centralized solvers (no
/// telemetry-plane layer runs): honors --metrics with an explicitly
/// empty snapshot and flushes the (empty) trace, so every bench binary
/// shares the same telemetry interface.
inline void finishUninstrumented(Telemetry& telemetry) {
  if (telemetry.printMetrics()) std::cout << MetricsRegistry().describe();
  telemetry.finish();
}

}  // namespace treesched::bench
