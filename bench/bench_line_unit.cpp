// Experiment E6 — unit-height lines with windows (Theorem 7.1) vs the
// Panconesi-Sozio baseline.
//
// The paper's headline improvement: the staged schedule lifts lambda from
// 1/(5+eps) to 1-eps, cutting the worst-case ratio from (20+eps) to
// (4+eps). Both algorithms run on IDENTICAL inputs with the identical
// Delta=3 layering; only the schedule differs. Also reports exact OPT
// (small instances / single-resource DP) and profit-greedy.
#include <iostream>

#include "algo/line_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "exact/greedy.hpp"
#include "exact/line_dp.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "seeds per configuration");
  flags.doubleFlag("epsilon", 0.1, "approximation slack");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");
  const double epsilon = flags.getDouble("epsilon");

  bench::banner(
      "E6",
      "Theorem 7.1: (4+eps)-approximation for unit-height lines+windows; "
      "beats the Panconesi-Sozio (20+eps) baseline — the paper's factor-5 "
      "improvement claim",
      "'ours vs UB' <= 4/(1-eps) on every row; ours' certified bound 5x "
      "better than PS; measured profits: ours >= PS on most rows");

  Table table({"slots", "m", "r", "windows", "ours", "PS", "greedy", "OPT",
               "ours vs UB", "PS vs UB", "ours bound", "PS bound"});

  struct Config {
    std::int32_t slots, m, r;
    double slack;
  };
  const Config configs[] = {{24, 8, 1, 0.0},   {24, 8, 2, 0.5},
                            {64, 48, 2, 0.0},  {64, 48, 2, 1.0},
                            {256, 160, 3, 0.5}, {320, 192, 4, 0.5}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      LineScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 15485863 + 41;
      cfg.numSlots = c.slots;
      cfg.numResources = c.r;
      cfg.demands.numDemands = c.m;
      cfg.demands.processingMax =
          std::max(2, c.slots / (c.slots >= 256 ? 16 : 8));
      cfg.demands.windowSlack = c.slack;
      cfg.demands.accessProbability = 0.7;
      const LineProblem problem = makeLineScenario(cfg);

      SolverOptions options;
      options.epsilon = epsilon;
      options.seed = cfg.seed + 1;
      const LineSolveResult ours = solveUnitLine(problem, options);
      const LineSolveResult ps = solvePanconesiSozioUnitLine(problem, options);

      InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
      const GreedyResult greedy = greedyByProfit(universe);

      std::string optCell = "-";
      if (c.r == 1 && c.slack == 0.0) {
        optCell = formatDouble(lineDpExact(problem).profit, 1);
      } else if (c.m <= 10) {
        const bench::OptEstimate opt = bench::estimateOpt(universe);
        if (opt.exact) optCell = formatDouble(opt.lowerBound, 1);
      }

      table.row()
          .cell(c.slots)
          .cell(c.m)
          .cell(c.r)
          .cell(c.slack > 0 ? "yes" : "no")
          .cell(ours.profit, 1)
          .cell(ps.profit, 1)
          .cell(greedy.profit, 1)
          .cell(optCell)
          .cell(ours.dualUpperBound / std::max(1e-9, ours.profit), 3)
          .cell(ps.dualUpperBound / std::max(1e-9, ps.profit), 3)
          .cell(ours.certifiedBound, 2)
          .cell(ps.certifiedBound, 2);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
