// Experiment E11 — the distributed protocol over simulated message passing
// (paper §5 "Distributed Implementation").
//
// Reports simulated communication rounds (total and busy), message and
// payload counts, the O(M) message-size discipline, and verifies that the
// distributed run (a) reaches (1-eps)-satisfaction, (b) keeps every
// processor's local dual view exactly consistent with ground truth, and
// (c) matches the centralized engine bit-for-bit.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "dist/protocol.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 91, "base RNG seed");
  flags.stringFlag("json", "BENCH_dist.json",
                   "machine-readable report path ('' disables)");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  bench::Telemetry telemetry(flags);

  bench::banner(
      "E11",
      "§5 distributed implementation: O(M) messages, round structure "
      "(2*T_MIS+1 per step + 1 per tuple for phase 2), local dual views "
      "stay consistent, output identical to the centralized engine",
      "'max msg' <= 2 units of M; 'consistent' and 'matches central' all "
      "'yes'; busy rounds a small fraction of scheduled rounds");

  Table table({"n", "m", "r", "rounds", "busy", "messages", "payload(M)",
               "max msg", "lambda", "consistent", "matches central"});
  bench::JsonReport report(flags.getString("json"));

  struct Config {
    std::int32_t n, m, r;
  };
  const Config configs[] = {{16, 12, 2}, {32, 24, 2}, {32, 48, 3},
                            {64, 64, 3}, {64, 96, 4}};
  for (const Config& c : configs) {
    TreeScenarioConfig cfg;
    cfg.seed = seed + static_cast<std::uint64_t>(c.n * 3 + c.m);
    cfg.numVertices = c.n;
    cfg.numNetworks = c.r;
    cfg.demands.numDemands = c.m;
    cfg.demands.accessProbability = 0.7;
    const TreeProblem problem = makeTreeScenario(cfg);

    DistributedOptions dopt;
    dopt.seed = cfg.seed + 1;
    dopt.misRoundBudget = 32;
    dopt.stepsPerStage = 10;
    // One registry per config row: the report embeds each run's
    // snapshot, so rows stay self-contained.
    MetricsRegistry metrics;
    dopt.tracer = telemetry.tracer();
    dopt.metrics = &metrics;
    const DistributedResult dist = runDistributedUnitTree(problem, dopt);
    if (telemetry.printMetrics()) {
      std::cout << metrics.describe();
    }

    InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
    universe.buildConflicts();
    const TreeLayeringResult layering = buildTreeLayering(problem, universe);
    FrameworkConfig copt;
    copt.seed = dopt.seed;
    copt.misRoundBudget = dopt.misRoundBudget;
    copt.fixedSchedule = true;
    copt.stepsPerStage = dopt.stepsPerStage;
    const TwoPhaseResult central =
        runTwoPhase(universe, layering.layering, copt);
    std::vector<InstanceId> centralSorted = central.solution.instances;
    std::sort(centralSorted.begin(), centralSorted.end());

    table.row()
        .cell(c.n)
        .cell(c.m)
        .cell(c.r)
        .cell(dist.network.rounds)
        .cell(dist.network.busyRounds)
        .cell(dist.network.messages)
        .cell(dist.network.payload)
        .cell(dist.network.maxMessagePayload)
        .cell(dist.lambdaMeasured, 4)
        .cell(dist.localViewsConsistent ? "yes" : "NO")
        .cell(dist.solution.instances == centralSorted ? "yes" : "NO");

    report.row()
        .field("n", c.n)
        .field("m", c.m)
        .field("r", c.r)
        .field("rounds", dist.network.rounds)
        .field("busy_rounds", dist.network.busyRounds)
        .field("messages", dist.network.messages)
        .field("payload", dist.network.payload)
        .field("max_message_payload", dist.network.maxMessagePayload)
        .field("retransmissions", dist.network.retransmissions)
        .field("virtual_time", dist.network.virtualTime)
        .field("lambda", dist.lambdaMeasured)
        .field("consistent", dist.localViewsConsistent)
        .field("matches_central", dist.solution.instances == centralSorted)
        .jsonField("metrics", metrics.toJson());
  }
  table.print(std::cout);
  if (!flags.getString("json").empty()) {
    report.write();
  }
  telemetry.finish();
  return 0;
}
