// Experiment E12 — the §5 protocol over the asynchronous lossy network
// (net/: alpha-synchronizer + ack/retransmission + sharding).
//
// Runs the lossy_wide_area presets (heavy-tail latency, 5% drops,
// locality sharding) and reports what the wire costs: virtual time,
// physical transmissions vs demand-level messages, retransmissions and
// drops — while verifying the result stays bit-identical to the
// round-synchronous bus. Emits BENCH_async.json next to the table so the
// async perf trajectory is tracked across PRs.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "dist/protocol.hpp"
#include "gen/scenario.hpp"
#include "net/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

struct RowInput {
  std::string kind;  ///< "tree" or "line"
  std::int32_t n = 0;
  std::int32_t m = 0;
  std::int32_t shards = 0;
  DistributedResult async;
  DistributedResult sync;
  /// Metrics snapshot of the async run (the sync run is only the
  /// bit-identity comparator and stays uninstrumented).
  std::string metricsJson;
};

void report(Table& table, bench::JsonReport& json, const RowInput& in) {
  const bool matches =
      in.async.solution.instances == in.sync.solution.instances &&
      in.async.profit == in.sync.profit;
  std::int64_t maxLoad = 0;
  for (const std::int64_t load : in.async.network.processorLoad) {
    maxLoad = std::max(maxLoad, load);
  }
  table.row()
      .cell(in.kind)
      .cell(in.n)
      .cell(in.m)
      .cell(in.shards)
      .cell(in.async.network.rounds)
      .cell(in.async.network.messages)
      .cell(in.async.network.transmissions)
      .cell(in.async.network.retransmissions)
      .cell(in.async.network.drops)
      .cell(in.async.network.virtualTime, 1)
      .cell(maxLoad)
      .cell(in.async.localViewsConsistent ? "yes" : "NO")
      .cell(matches ? "yes" : "NO");
  json.row()
      .field("kind", in.kind)
      .field("n", in.n)
      .field("m", in.m)
      .field("shard_processors", in.shards)
      .field("rounds", in.async.network.rounds)
      .field("busy_rounds", in.async.network.busyRounds)
      .field("messages", in.async.network.messages)
      .field("payload", in.async.network.payload)
      .field("transmissions", in.async.network.transmissions)
      .field("retransmissions", in.async.network.retransmissions)
      .field("drops", in.async.network.drops)
      .field("virtual_time", in.async.network.virtualTime)
      .field("max_processor_load", maxLoad)
      .field("consistent", in.async.localViewsConsistent)
      .field("matches_sync", matches)
      .jsonField("metrics", in.metricsJson);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 17, "base RNG seed");
  flags.intFlag("seeds", 2, "seeds per configuration");
  flags.stringFlag("json", "BENCH_async.json",
                   "machine-readable report path ('' disables)");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed0 = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto numSeeds = flags.getInt("seeds");
  bench::Telemetry telemetry(flags);

  bench::banner(
      "E12",
      "the unchanged §5 protocol over an async lossy wide-area wire "
      "(heavy-tail latency, 5% drops, ack/retransmission, locality "
      "sharding) is bit-identical to the round-synchronous run",
      "'consistent' and 'matches sync' all 'yes'; transmissions < messages "
      "under sharding (local chatter stays off the wire); retransmissions "
      "and drops > 0 at 5% loss");

  Table table({"kind", "n", "m", "shards", "rounds", "messages", "wire tx",
               "retx", "drops", "vtime", "max load", "consistent",
               "matches sync"});
  bench::JsonReport json(flags.getString("json"));

  DistributedOptions dopt;
  dopt.misRoundBudget = 8;
  dopt.stepsPerStage = 6;

  for (std::int64_t s = 0; s < numSeeds; ++s) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(s) * 31;
    dopt.seed = seed + 3;

    for (const std::int32_t shards : {0, 6}) {
      const LossyWideAreaTreeScenario tree =
          makeLossyWideAreaTree(seed, 48, 3, 36, shards);
      RowInput row;
      row.kind = "tree";
      row.n = tree.problem.numVertices;
      row.m = static_cast<std::int32_t>(tree.problem.demands.size());
      row.shards = shards;
      // Telemetry rides only the async run; the registry is per-row so
      // each JSON row embeds its own snapshot.
      MetricsRegistry metrics;
      dopt.tracer = telemetry.tracer();
      dopt.metrics = &metrics;
      row.async = runAsyncUnitTree(tree.problem, dopt, tree.net);
      dopt.tracer = nullptr;
      dopt.metrics = nullptr;
      row.sync = runDistributedUnitTree(tree.problem, dopt);
      if (telemetry.printMetrics()) std::cout << metrics.describe();
      row.metricsJson = metrics.toJson();
      report(table, json, row);
    }

    for (const std::int32_t shards : {0, 5}) {
      const LossyWideAreaLineScenario line =
          makeLossyWideAreaLine(seed, 96, 3, 30, shards);
      RowInput row;
      row.kind = "line";
      row.n = line.problem.numSlots;
      row.m = static_cast<std::int32_t>(line.problem.demands.size());
      row.shards = shards;
      MetricsRegistry metrics;
      dopt.tracer = telemetry.tracer();
      dopt.metrics = &metrics;
      row.async = runAsyncUnitLine(line.problem, dopt, line.net);
      dopt.tracer = nullptr;
      dopt.metrics = nullptr;
      row.sync = runDistributedUnitLine(line.problem, dopt);
      if (telemetry.printMetrics()) std::cout << metrics.describe();
      row.metricsJson = metrics.toJson();
      report(table, json, row);
    }
  }
  table.print(std::cout);
  if (!flags.getString("json").empty()) {
    json.write();
  }
  telemetry.finish();
  return 0;
}
