// Experiment E13 (extension) — local-search post-processing.
//
// Quantifies how much a cheap deterministic cleanup (add + 1-out swap
// moves) recovers on top of each algorithm's phase-2 greedy, and how close
// the combination gets to the dual certificate. Not part of the paper's
// protocol; it demonstrates that the primal-dual solutions are good
// *starting points* whose guarantees survive post-processing.
#include <iostream>

#include "algo/sequential_tree.hpp"
#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "exact/greedy.hpp"
#include "exact/local_search.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

Solution solutionFromAssignments(const InstanceUniverse& u,
                                 const std::vector<TreeAssignment>& as) {
  Solution s;
  for (const TreeAssignment& a : as) {
    for (const InstanceId i : u.instancesOfDemand(a.demand)) {
      if (u.instance(i).network == a.network) {
        s.instances.push_back(i);
      }
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "instances per configuration");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E13 (extension)",
      "local search (add + swap to fixed point) on top of phase-2 greedy; "
      "guarantees carry over since profit never decreases",
      "'+LS' >= base profit on every row; residual gap to the dual UB "
      "shrinks; improvement is largest for the weakest starting point "
      "(greedy)");

  Table table({"n", "m", "algorithm", "base", "+LS", "gain%", "vs UB before",
               "vs UB after", "swaps"});

  struct Config {
    std::int32_t n, m;
  };
  const Config configs[] = {{24, 40}, {64, 128}, {128, 256}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      TreeScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 7368787 + 13;
      cfg.numVertices = c.n;
      cfg.numNetworks = 3;
      cfg.demands.numDemands = c.m;
      cfg.demands.accessProbability = 0.7;
      const TreeProblem problem = makeTreeScenario(cfg);
      InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);

      SolverOptions options;
      options.seed = cfg.seed + 1;
      const TreeSolveResult dist = solveUnitTree(problem, options);
      const SequentialTreeResult seq = solveSequentialTree(problem);
      const GreedyResult greedy = greedyByProfit(u);

      struct Row {
        std::string name;
        Solution start;
        double base;
        double ub;
      };
      const Row rows[] = {
          {"distributed", solutionFromAssignments(u, dist.assignments),
           dist.profit, dist.dualUpperBound},
          {"sequential", solutionFromAssignments(u, seq.assignments),
           seq.profit, seq.dualUpperBound},
          {"greedy", greedy.solution, greedy.profit, dist.dualUpperBound},
      };
      for (const Row& row : rows) {
        const LocalSearchResult ls = improveSolution(u, row.start);
        table.row()
            .cell(c.n)
            .cell(c.m)
            .cell(row.name)
            .cell(row.base, 1)
            .cell(ls.profit, 1)
            .cell(100.0 * (ls.profit - row.base) / row.base, 1)
            .cell(row.ub / row.base, 3)
            .cell(row.ub / ls.profit, 3)
            .cell(ls.swapMoves);
      }
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
