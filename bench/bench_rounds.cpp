// Experiment E4 — round complexity (Theorem 5.3, Lemma 5.1).
//
// The paper bounds the communication rounds by
//   O(T_MIS * log n * log(1/eps) * log(pmax/pmin)).
// Each sub-table sweeps ONE factor with the others pinned and reports the
// measured epochs (= layering groups ~ log n), stages per epoch
// (~ log(1/eps)), max steps per stage (~ log(pmax/pmin), Lemma 5.1) and
// Luby rounds. Reproduction = each measured column grows linearly in its
// own log-factor and is flat in the others.
#include <iostream>

#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

TreeSolveResult solve(std::int32_t n, std::int32_t m, double epsilon,
                      double pmax, std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = m;
  cfg.demands.accessProbability = 0.7;
  cfg.demands.profitMax = pmax;
  const TreeProblem problem = makeTreeScenario(cfg);
  SolverOptions options;
  options.epsilon = epsilon;
  options.seed = seed + 1;
  return solveUnitTree(problem, options);
}

void emitRow(Table& table, const std::string& sweep, const std::string& value,
             const TreeSolveResult& r) {
  table.row()
      .cell(sweep)
      .cell(value)
      .cell(r.stats.epochs)
      .cell(r.stats.stages / std::max(1, r.stats.epochs))
      .cell(r.stats.maxStepsInStage)
      .cell(r.stats.steps)
      .cell(r.stats.misRounds)
      .cell(r.stats.lambdaMeasured, 4);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 21, "RNG seed");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));

  bench::banner(
      "E4",
      "Theorem 5.3 round bound O(T_MIS log n log(1/eps) log(pmax/pmin)); "
      "Lemma 5.1: steps per stage <= O(log(pmax/pmin))",
      "epochs grow ~ log n in sweep 1 and stay flat elsewhere; stages/epoch "
      "grow ~ log(1/eps) in sweep 2; max steps/stage grows ~ log(pmax/pmin) "
      "in sweep 3 and stays small elsewhere");

  Table table({"sweep", "value", "epochs", "stages/epoch", "max steps/stage",
               "total steps", "MIS rounds", "lambda"});

  // Sweep 1: n doubling; eps = 0.1, pmax/pmin = 8.
  for (std::int32_t n = 32; n <= 512; n *= 2) {
    emitRow(table, "n", std::to_string(n),
            solve(n, 2 * n, 0.1, 8.0, seed + static_cast<std::uint64_t>(n)));
  }
  // Sweep 2: eps halving; n = 64, pmax/pmin = 8.
  for (const double eps : {0.4, 0.2, 0.1, 0.05, 0.025}) {
    emitRow(table, "epsilon", formatDouble(eps, 3),
            solve(64, 128, eps, 8.0, seed + 1000));
  }
  // Sweep 3: profit spread doubling; n = 64, eps = 0.1.
  for (const double pmax : {2.0, 8.0, 32.0, 128.0, 512.0}) {
    emitRow(table, "pmax/pmin", formatDouble(pmax, 0),
            solve(64, 128, 0.1, pmax, seed + 2000));
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
