// Experiment E12 — micro-benchmarks (google-benchmark): the substrate
// operations that dominate the simulation's wall-clock.
#include <benchmark/benchmark.h>

#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "decomp/tree_decomposition.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "gen/tree_gen.hpp"

namespace treesched {
namespace {

void BM_LcaQuery(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  Rng rng(1);
  const TreeNetwork t = generateTree(TreeShape::UniformRandom, 0, n, rng);
  Rng pick(2);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(
        pick.nextBounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(
        pick.nextBounded(static_cast<std::uint64_t>(n)));
    benchmark::DoNotOptimize(t.lca(u, v));
  }
}
BENCHMARK(BM_LcaQuery)->Arg(256)->Arg(4096)->Arg(65536);

void BM_IdealDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  Rng rng(3);
  const TreeNetwork t = generateTree(TreeShape::UniformRandom, 0, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idealDecomposition(t));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_IdealDecomposition)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_BalancingDecomposition(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  Rng rng(4);
  const TreeNetwork t = generateTree(TreeShape::UniformRandom, 0, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancingDecomposition(t));
  }
}
BENCHMARK(BM_BalancingDecomposition)->Arg(1024)->Arg(4096);

TreeProblem microProblem(std::int32_t n, std::int32_t m) {
  TreeScenarioConfig cfg;
  cfg.seed = 5;
  cfg.numVertices = n;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = m;
  cfg.demands.accessProbability = 0.7;
  return makeTreeScenario(cfg);
}

void BM_ConflictGraphBuild(benchmark::State& state) {
  const auto m = static_cast<std::int32_t>(state.range(0));
  const TreeProblem problem = microProblem(64, m);
  for (auto _ : state) {
    InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
    u.buildConflicts();
    benchmark::DoNotOptimize(u.maxConflictDegree());
  }
}
BENCHMARK(BM_ConflictGraphBuild)->Arg(128)->Arg(512)->Arg(2048);

void BM_TreeLayering(benchmark::State& state) {
  const auto m = static_cast<std::int32_t>(state.range(0));
  const TreeProblem problem = microProblem(128, m);
  const InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildTreeLayering(problem, u));
  }
}
BENCHMARK(BM_TreeLayering)->Arg(128)->Arg(512);

void BM_TwoPhaseEngine(benchmark::State& state) {
  const auto m = static_cast<std::int32_t>(state.range(0));
  const TreeProblem problem = microProblem(64, m);
  InstanceUniverse u = InstanceUniverse::fromTreeProblem(problem);
  u.buildConflicts();
  const TreeLayeringResult layering = buildTreeLayering(problem, u);
  FrameworkConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runTwoPhase(u, layering.layering, cfg));
  }
}
BENCHMARK(BM_TwoPhaseEngine)->Arg(128)->Arg(512);

}  // namespace
}  // namespace treesched

BENCHMARK_MAIN();
