// Experiment E14 — the online churn engine: epoch-batched admission with
// warm-started incremental re-solves (src/online/).
//
// Replays the churn presets (flash_crowd_50k, diurnal_metro_100k,
// hotspot_tree_50k, plus a Poisson control on each pool) through the
// churn engine and reports, per arrival pattern: epochs/sec, the mean
// re-solve fraction (how much of the instance each epoch actually re-ran
// — the number that must sit below 1.0 on locality-heavy traces), the
// admission-latency SLA (mean/max epochs from arrival to first
// admission) and the revenue ratio of the final incremental solution
// against the from-scratch two-phase solve on the surviving demand set.
//
// The transport dimension runs the hotspot preset over every live
// transport (sync bus / async lossy wire / live-sharded wire) at a
// smaller pool — epoch outcomes are bit-identical by contract
// (tests/online_transport_test.cpp), so the rows isolate what the wire
// costs: epochs/sec, physical transmissions and virtual time.
//
// Emits BENCH_online.json next to the table; CI uploads it with the
// other bench reports and the schema guard keeps its keys stable.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "decomp/layering.hpp"
#include "framework/two_phase.hpp"
#include "gen/scenario.hpp"
#include "obs/timeseries.hpp"
#include "online/churn_engine.hpp"
#include "policy/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

struct PatternRun {
  std::string preset;
  std::string pattern;
  std::string transport = "sync";
  bool rebalance = false;  ///< epoch-boundary hot-shard rebalancing on
  std::int32_t demands = 0;
  std::int32_t epochs = 0;
  double wallMs = 0;
  ChurnRunResult churn;
  /// Per-run MetricsRegistry snapshot (obs/), embedded verbatim in the
  /// JSON row so every row stays self-contained.
  std::string metricsJson;
  double scratchProfit = 0;
  /// Whether the *final* epoch was a full re-solve; only then is the
  /// bit-gate below meaningful (warm finals are covered by the revenue
  /// ratio, and full-resolve identity is gated by tests/online_test).
  bool finalEpochFullResolve = false;
  bool finalFullResolveMatchesScratch = false;
};

void report(Table& table, bench::JsonReport& json, const PatternRun& run) {
  const double epochsPerSec =
      run.wallMs > 0 ? 1000.0 * static_cast<double>(run.epochs) / run.wallMs
                     : 0.0;
  const double revenueRatio =
      run.scratchProfit > 0 ? run.churn.finalProfit / run.scratchProfit : 1.0;
  table.row()
      .cell(run.preset)
      .cell(run.pattern)
      .cell(run.transport)
      .cell(run.demands)
      .cell(run.epochs)
      .cell(run.wallMs, 1)
      .cell(epochsPerSec, 1)
      .cell(run.churn.universeBuildMs, 1)
      .cell(run.churn.meanExtendUsPerArrival, 2)
      .cell(run.churn.meanResolveFraction, 3)
      .cell(run.churn.fullResolves)
      .cell(revenueRatio, 3)
      .cell(run.churn.sla.meanLatencyEpochs, 2)
      .cell(run.churn.sla.p99LatencyEpochs, 1)
      .cell(run.churn.sla.maxLatencyEpochs)
      .cell(run.churn.totalRounds)
      .cell(run.churn.network.transmissions)
      .cell(run.churn.totalDemandsMigrated)
      .cell(run.churn.peakVarianceBefore, 1)
      .cell(run.churn.peakVarianceAfter, 1);
  json.row()
      .field("preset", run.preset)
      .field("pattern", run.pattern)
      .field("transport", run.transport)
      .field("rebalance", run.rebalance)
      .field("demands", run.demands)
      .field("epochs", run.epochs)
      .field("wall_ms", run.wallMs)
      .field("epochs_per_sec", epochsPerSec)
      .field("universe_build_ms", run.churn.universeBuildMs)
      .field("mean_extend_us_per_arrival", run.churn.meanExtendUsPerArrival)
      .field("mean_resolve_fraction", run.churn.meanResolveFraction)
      .field("full_resolves", run.churn.fullResolves)
      .field("final_profit", run.churn.finalProfit)
      .field("scratch_profit", run.scratchProfit)
      .field("revenue_ratio", revenueRatio)
      .field("rounds", run.churn.totalRounds)
      .field("messages", run.churn.totalMessages)
      .field("transmissions", run.churn.network.transmissions)
      .field("retransmissions", run.churn.network.retransmissions)
      .field("virtual_time", run.churn.network.virtualTime)
      .field("mean_admission_latency_epochs",
             run.churn.sla.meanLatencyEpochs)
      .field("max_admission_latency_epochs", run.churn.sla.maxLatencyEpochs)
      .field("sla_p50_epochs", run.churn.sla.p50LatencyEpochs)
      .field("sla_p99_epochs", run.churn.sla.p99LatencyEpochs)
      .field("admitted_demands", run.churn.sla.admittedDemands)
      .field("departed_unadmitted", run.churn.sla.departedUnadmitted)
      .field("final_epoch_full_resolve", run.finalEpochFullResolve)
      .field("final_full_resolve_matches_scratch",
             run.finalFullResolveMatchesScratch)
      .field("demands_migrated", run.churn.totalDemandsMigrated)
      .field("load_variance_before", run.churn.peakVarianceBefore)
      .field("load_variance_after", run.churn.peakVarianceAfter)
      .field("engine_claims", run.churn.totalEngineClaims)
      .field("engine_steals", run.churn.totalEngineSteals)
      .jsonField("metrics", run.metricsJson);
}

/// From-scratch comparator on the final active set: the two-phase engine
/// restricted to the demands still alive after the last epoch.
double scratchProfitOnSurvivors(const InstanceUniverse& universe,
                                const Layering& layering,
                                const ChurnEngineConfig& config,
                                const ChurnRunResult& churn,
                                std::span<const InstanceId> activeInstances) {
  // Lift to the unified SchedulerConfig (policy/config.hpp) and project
  // back instead of copying fields by hand; the lifting keeps the
  // online path's fixed-schedule contract.
  SchedulerConfig sched = SchedulerConfig::fromOnlineSolver(config.solver);
  sched.core.seed = churn.epochs.empty() ? config.solver.seed
                                         : churn.epochs.back().protocolSeed;
  return runTwoPhaseRestricted(universe, layering, sched.framework(),
                               activeInstances)
      .profit;
}

DynamicUniverse makeDynamicUniverse(const TreeProblem& pool) {
  return makeDynamicTreeUniverse(pool);
}
DynamicUniverse makeDynamicUniverse(const LineProblem& pool) {
  return makeDynamicLineUniverse(pool);
}

template <typename Pool>
PatternRun runPattern(const std::string& preset, const std::string& pattern,
                      const Pool& pool, const PreparedRun& prepared,
                      const ArrivalConfig& arrivals, double epochLength,
                      std::uint64_t seed, std::int32_t threads,
                      bench::Telemetry& telemetry, std::string* seriesOut,
                      const LiveTransportConfig& transport = {},
                      const ShardRebalanceConfig& rebalance = {}) {
  ChurnEngineConfig config;
  config.epochLength = epochLength;
  config.solver.seed = seed + 13;
  config.solver.epsilon = 0.3;
  config.solver.misRoundBudget = 4;
  config.solver.stepsPerStage = 2;
  config.solver.threads = threads;
  config.solver.rebalance = rebalance;
  config.transport = transport;
  // One registry per pattern run; telemetry is read-only w.r.t. the
  // epoch outcomes, so the bit-gates below are unaffected.
  MetricsRegistry metrics;
  config.solver.tracer = telemetry.tracer();
  config.solver.metrics = &metrics;
  // Per-epoch registry snapshots (obs/timeseries.hpp): one labeled
  // EpochSeries per pattern run, all concatenated into one JSONL
  // artifact. Snapshots are read-only, so the bit-gates are unaffected.
  EpochSeries series(metrics,
                     preset + "/" + pattern + "/" +
                         std::string(liveTransportKindName(transport.kind)) +
                         (rebalance.enabled ? "/rebalance" : ""));
  if (seriesOut != nullptr) {
    config.solver.series = &series;
  }

  const ChurnTrace trace = generateChurnTrace(arrivals, pool.access);

  PatternRun run;
  run.preset = preset;
  run.pattern = pattern;
  run.transport = liveTransportKindName(transport.kind);
  run.rebalance = rebalance.enabled;
  run.demands = pool.numDemands();

  // The engine (with its live transport and dynamic universe) is
  // rebuilt per pattern; trace generation happens outside the measured
  // window, the dynamic-universe shell build inside it (its own cost is
  // reported separately as universe_build_ms).
  const auto begin = std::chrono::steady_clock::now();
  DynamicUniverse universe = makeDynamicUniverse(pool);
  ChurnRunResult churn = runChurnOverTrace(universe, trace, config);
  const auto end = std::chrono::steady_clock::now();

  run.epochs = static_cast<std::int32_t>(churn.epochs.size());
  run.wallMs = std::chrono::duration<double, std::milli>(end - begin).count();
  run.churn = std::move(churn);
  if (telemetry.printMetrics()) {
    std::cout << metrics.describe();
  }
  run.metricsJson = metrics.toJson();
  if (seriesOut != nullptr) {
    *seriesOut += series.jsonl();
  }
  run.scratchProfit = scratchProfitOnSurvivors(
      prepared.universe, prepared.layering, config, run.churn,
      run.churn.finalActiveInstances);
  if (!run.churn.epochs.empty() && run.churn.epochs.back().fullResolve) {
    run.finalEpochFullResolve = true;
    run.finalFullResolveMatchesScratch =
        run.churn.epochs.back().profit == run.scratchProfit;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 1, "base RNG seed");
  flags.intFlag("tree-demands", 50'000, "flash_crowd preset demand count");
  flags.intFlag("line-demands", 100'000, "diurnal preset demand count");
  flags.intFlag("hotspot-demands", 50'000, "hotspot preset demand count");
  flags.intFlag("transport-demands", 2'000,
                "pool size of the per-transport matrix (event-driven "
                "wires are simulated packet by packet)");
  flags.intFlag("threads", 1, "worker threads for the epoch re-solves");
  flags.stringFlag("json", "BENCH_online.json",
                   "machine-readable report path ('' disables)");
  flags.stringFlag("series", "BENCH_online_series.jsonl",
                   "per-epoch time-series JSONL path ('' disables)");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto treeDemands =
      static_cast<std::int32_t>(flags.getInt("tree-demands"));
  const auto lineDemands =
      static_cast<std::int32_t>(flags.getInt("line-demands"));
  const auto hotspotDemands =
      static_cast<std::int32_t>(flags.getInt("hotspot-demands"));
  const auto transportDemands =
      static_cast<std::int32_t>(flags.getInt("transport-demands"));
  const auto threads = static_cast<std::int32_t>(flags.getInt("threads"));
  bench::Telemetry telemetry(flags);

  bench::banner(
      "E14",
      "epoch-batched admission with warm-started incremental re-solves "
      "tracks the from-scratch two-phase engine at a fraction of the "
      "phase-1 work, over any transport (sync bus / async lossy wire / "
      "live-sharded wire)",
      "mean re-solve fraction < 1.0 on the locality-heavy churn presets; "
      "revenue ratio vs from-scratch within the approximation factor "
      "(empirically near 1); full-resolve epochs identical to scratch; "
      "per-transport epochs identical, only wire accounting moves");

  Table table({"preset", "pattern", "transport", "demands", "epochs",
               "wall ms", "epochs/s", "build ms", "ext us/arr",
               "resolve frac", "full", "rev ratio",
               "sla mean", "sla p99", "sla max", "rounds", "wire tx",
               "migrated", "var before", "var after"});
  bench::JsonReport json(flags.getString("json"));
  const std::string seriesPath = flags.getString("series");
  std::string seriesText;
  std::string* const seriesOut = seriesPath.empty() ? nullptr : &seriesText;

  {
    const ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed,
                                                             treeDemands);
    const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
    report(table, json,
           runPattern("flash_crowd_50k", "flash_crowd", scenario.pool,
                      prepared, scenario.arrivals, scenario.epochLength,
                      seed, threads, telemetry, seriesOut));
    ArrivalConfig poisson = scenario.arrivals;
    poisson.model = ArrivalModel::Poisson;
    report(table, json,
           runPattern("flash_crowd_50k", "poisson", scenario.pool, prepared,
                      poisson, scenario.epochLength, seed, threads,
                      telemetry, seriesOut));
  }
  {
    const ChurnLineScenario scenario =
        makeDiurnalMetroLine100k(seed, lineDemands);
    const PreparedRun prepared = prepareUnitLineRun(scenario.pool);
    report(table, json,
           runPattern("diurnal_metro_100k", "diurnal", scenario.pool,
                      prepared, scenario.arrivals, scenario.epochLength,
                      seed, threads, telemetry, seriesOut));
    ArrivalConfig poisson = scenario.arrivals;
    poisson.model = ArrivalModel::Poisson;
    report(table, json,
           runPattern("diurnal_metro_100k", "poisson", scenario.pool,
                      prepared, poisson, scenario.epochLength, seed,
                      threads, telemetry, seriesOut));
  }
  {
    // The adversarial preset: a targeted arrival wave plus a correlated
    // mass departure on the same hot networks.
    const ChurnTreeScenario scenario = makeHotspotTree50k(seed,
                                                          hotspotDemands);
    const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
    report(table, json,
           runPattern("hotspot_tree_50k", "targeted_burst", scenario.pool,
                      prepared, scenario.arrivals, scenario.epochLength,
                      seed, threads, telemetry, seriesOut));
  }
  {
    // Pool-size sweep — the dynamic universe's O(arrival) claim made
    // visible: the same flash-crowd arrival process over pools of
    // growing size. mean_extend_us_per_arrival must stay flat across
    // these rows while any from-scratch rebuild would scale with the
    // pool (universe_build_ms of the one-off shell build tracks pool
    // size; the per-arrival column must not).
    const struct {
      const char* pattern;
      std::int32_t divisor;
    } sweep[] = {{"pool_sweep_quarter", 4},
                 {"pool_sweep_half", 2},
                 {"pool_sweep_full", 1}};
    for (const auto& point : sweep) {
      const std::int32_t poolSize = std::max(64, treeDemands / point.divisor);
      const ChurnTreeScenario scenario = makeFlashCrowdTree50k(seed, poolSize);
      const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
      report(table, json,
             runPattern("flash_crowd_50k", point.pattern, scenario.pool,
                        prepared, scenario.arrivals, scenario.epochLength,
                        seed, threads, telemetry, seriesOut));
    }
  }
  {
    // Transport matrix: identical epochs (by the Transport contract),
    // per-wire cost.
    const ChurnTreeScenario scenario =
        makeHotspotTree50k(seed, transportDemands);
    const PreparedRun prepared = prepareUnitTreeRun(scenario.pool);
    AsyncConfig wire;
    wire.seed = seed ^ 0x3b9ULL;
    wire.link.latency.model = LatencyModel::HeavyTail;
    wire.link.latency.base = 1.0;
    wire.link.latency.tailShape = 1.5;
    wire.link.latency.tailCap = 64.0;
    wire.link.dropProbability = 0.05;
    wire.link.retransmitTimeout = 16.0;
    for (const LiveTransportKind kind :
         {LiveTransportKind::SyncBus, LiveTransportKind::Async,
          LiveTransportKind::Sharded}) {
      LiveTransportConfig transport;
      transport.kind = kind;
      transport.async = wire;
      transport.async.shardProcessors = std::max(2, transportDemands / 64);
      report(table, json,
             runPattern("hotspot_tree_50k", "targeted_burst", scenario.pool,
                        prepared, scenario.arrivals, scenario.epochLength,
                        seed, threads, telemetry, seriesOut, transport));
      if (kind == LiveTransportKind::Sharded) {
        // The hotspot row the rebalancer exists for: the targeted burst
        // piles a hot network onto one sticky anchor, and the
        // epoch-boundary rebalance must collapse the per-processor load
        // variance (load_variance_after vs load_variance_before) while
        // the epochs stay bit-identical to the row above.
        ShardRebalanceConfig rebalance;
        rebalance.enabled = true;
        rebalance.seed = seed ^ 0x5ebaULL;
        report(table, json,
               runPattern("hotspot_tree_50k", "targeted_burst",
                          scenario.pool, prepared, scenario.arrivals,
                          scenario.epochLength, seed, threads, telemetry,
                          seriesOut, transport, rebalance));
      }
    }
  }

  table.print(std::cout);
  if (!flags.getString("json").empty()) {
    json.write();
  }
  if (seriesOut != nullptr) {
    std::ofstream out(seriesPath);
    out << seriesText;
    std::cout << "wrote " << seriesPath << "\n";
  }
  telemetry.finish();
  return 0;
}
