// Experiment E15: the policy tournament (policy/registry.hpp).
//
// Every registered scheduler runs over every gen/scenario preset — the
// one-shot presets as a single restricted solve on the full universe,
// the churn presets additionally through the scheduler-generic online
// epoch loop (policy/online_policy.hpp) — and the leaderboard ranks
// them by revenue with their latency and message cost alongside. This
// is the paper's positioning claim made executable: the certified
// two-phase family pays messages and rounds for its distributed
// guarantee, the centralized baselines (greedy, local search, the
// Even–Medina–Rosén-style density-class packing) answer with zero wire
// cost and no guarantee, and the revenue column shows what the
// guarantee is worth preset by preset.
//
// Message/round columns are honest across that divide: a distributed
// policy reports the traffic of its protocol run, a centralized policy
// reports 0 because it assumes global knowledge — which is the
// comparison axis, not an artifact.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/scenario.hpp"
#include "policy/online_policy.hpp"
#include "policy/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

struct OneshotRun {
  std::string preset;
  std::string policy;
  bool certified = false;
  bool distributed = false;
  std::int32_t demands = 0;
  std::int64_t instances = 0;
  std::int64_t admitted = 0;
  double revenue = 0;
  double ratioVsTwoPhase = 1.0;
  double dualUpperBound = 0;
  double lambda = 0;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t raises = 0;
  double wallMs = 0;
  /// Metrics snapshot of this policy's run; centralized baselines
  /// publish nothing and embed "{}" — which is itself the comparison
  /// axis (no protocol, no protocol metrics).
  std::string metricsJson;
};

struct OnlineRun {
  std::string preset;
  std::string policy;
  std::int32_t demands = 0;
  std::int32_t epochs = 0;
  double finalRevenue = 0;
  double ratioVsTwoPhase = 1.0;
  std::int64_t admittedDemands = 0;
  std::int64_t departedUnadmitted = 0;
  double slaMeanEpochs = 0;
  std::int64_t slaMaxEpochs = 0;
  double meanResolveFraction = 0;
  std::int32_t fullResolves = 0;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  double wallMs = 0;
  std::string metricsJson;
};

SchedulerConfig tournamentConfig(std::uint64_t seed) {
  SchedulerConfig config;
  config.core.seed = seed + 7;
  config.core.epsilon = 0.3;
  config.core.misRoundBudget = 4;
  config.core.stepsPerStage = 2;
  return config;
}

OneshotRun runOneshot(const std::string& preset,
                      const ScenarioProblem& scenario,
                      const std::string& policyId, std::uint64_t seed,
                      std::int32_t demands, bench::Telemetry& telemetry) {
  const SchedulerRegistry& registry = SchedulerRegistry::all();
  const SchedulerInfo& info = registry.info(policyId);
  SchedulerConfig config = tournamentConfig(seed);
  MetricsRegistry metrics;
  config.distributed.tracer = telemetry.tracer();
  config.distributed.metrics = &metrics;
  const auto scheduler = registry.make(policyId, config);

  const auto begin = std::chrono::steady_clock::now();
  const ScheduleOutcome outcome = scheduler->solve(
      {scenario.universe, scenario.layering, scenario.access, {}, nullptr});
  const auto end = std::chrono::steady_clock::now();

  OneshotRun run;
  run.preset = preset;
  run.policy = policyId;
  run.certified = info.certified;
  run.distributed = info.distributed;
  run.demands = demands;
  run.instances = scenario.universe.numInstances();
  run.admitted = static_cast<std::int64_t>(outcome.solution.instances.size());
  run.revenue = outcome.profit;
  run.dualUpperBound = outcome.dualUpperBound;
  run.lambda = outcome.lambdaMeasured;
  run.rounds = outcome.rounds;
  run.messages = outcome.messages;
  run.raises = outcome.raises;
  run.wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();
  if (telemetry.printMetrics()) std::cout << metrics.describe();
  run.metricsJson = metrics.toJson();
  return run;
}

OnlineRun runOnline(const std::string& preset,
                    const ScenarioProblem& scenario,
                    const std::string& policyId, std::uint64_t seed,
                    std::int32_t demands, std::int32_t threads,
                    bench::Telemetry& telemetry) {
  ChurnEngineConfig config;
  config.epochLength = scenario.epochLength;
  config.solver.seed = seed + 13;
  config.solver.threads = threads;
  MetricsRegistry metrics;
  config.solver.tracer = telemetry.tracer();
  config.solver.metrics = &metrics;

  const auto begin = std::chrono::steady_clock::now();
  const ChurnRunResult churn =
      runChurnWithScheduler(scenario, scenario.trace, config, policyId);
  const auto end = std::chrono::steady_clock::now();

  OnlineRun run;
  run.preset = preset;
  run.policy = policyId;
  run.demands = demands;
  run.epochs = static_cast<std::int32_t>(churn.epochs.size());
  run.finalRevenue = churn.finalProfit;
  run.admittedDemands = churn.sla.admittedDemands;
  run.departedUnadmitted = churn.sla.departedUnadmitted;
  run.slaMeanEpochs = churn.sla.meanLatencyEpochs;
  run.slaMaxEpochs = churn.sla.maxLatencyEpochs;
  run.meanResolveFraction = churn.meanResolveFraction;
  run.fullResolves = churn.fullResolves;
  run.rounds = churn.totalRounds;
  run.messages = churn.totalMessages;
  run.wallMs =
      std::chrono::duration<double, std::milli>(end - begin).count();
  if (telemetry.printMetrics()) std::cout << metrics.describe();
  run.metricsJson = metrics.toJson();
  return run;
}

/// Leaderboard: rows of one preset sorted by revenue descending (rank 1
/// = highest revenue); ties broken by policy id for a stable print.
template <typename Run, typename Revenue>
void rankByRevenue(std::vector<Run>& runs, Revenue revenue) {
  std::stable_sort(runs.begin(), runs.end(),
                   [&revenue](const Run& a, const Run& b) {
                     if (revenue(a) != revenue(b)) {
                       return revenue(a) > revenue(b);
                     }
                     return a.policy < b.policy;
                   });
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 2012, "base RNG seed");
  flags.intFlag("demands", 1'500,
                "demand count per one-shot preset (the tournament runs "
                "the full catalogue at one comparable scale)");
  flags.intFlag("churn-demands", 360, "pool size per churn preset");
  flags.intFlag("threads", 1, "worker threads for the epoch re-solves");
  flags.stringFlag("policies", ".*",
                   "regex over registered scheduler ids (full match)");
  flags.stringFlag("json", "BENCH_tournament.json",
                   "machine-readable report path ('' disables)");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  const auto demands = static_cast<std::int32_t>(flags.getInt("demands"));
  const auto churnDemands =
      static_cast<std::int32_t>(flags.getInt("churn-demands"));
  const auto threads = static_cast<std::int32_t>(flags.getInt("threads"));
  bench::Telemetry telemetry(flags);

  const std::vector<std::string> policies =
      SchedulerRegistry::all().ids(std::regex(flags.getString("policies")));
  if (policies.empty()) {
    std::cout << "no registered policy matches --policies '"
              << flags.getString("policies") << "'\n";
    return 1;
  }

  bench::banner(
      "E15",
      "one Scheduler interface spans the certified two-phase family and "
      "the uncertified baselines; the tournament prices the distributed "
      "guarantee in revenue, latency and message cost per preset",
      "two_phase variants stay within their approximation factor of the "
      "dual bound on every preset; baselines pay zero messages and win "
      "or lose revenue preset by preset — the leaderboard makes the "
      "trade explicit");

  bench::JsonReport json(flags.getString("json"));

  // ---- One-shot tournament: every preset, full universe ----------------
  Table oneshot({"preset", "rank", "policy", "revenue", "vs two_phase",
                 "dual UB", "wall ms", "rounds", "messages", "raises"});
  for (const ScenarioPresetInfo& preset : scenarioPresets()) {
    const ScenarioProblem scenario =
        buildScenarioProblem(preset.name, seed, demands);
    std::vector<OneshotRun> runs;
    runs.reserve(policies.size());
    for (const std::string& id : policies) {
      runs.push_back(
          runOneshot(preset.name, scenario, id, seed, demands, telemetry));
    }
    double reference = 0;
    for (const OneshotRun& run : runs) {
      if (run.policy == "two_phase") reference = run.revenue;
    }
    rankByRevenue(runs, [](const OneshotRun& r) { return r.revenue; });
    std::int32_t rank = 0;
    for (OneshotRun& run : runs) {
      if (reference > 0) run.ratioVsTwoPhase = run.revenue / reference;
      oneshot.row()
          .cell(run.preset)
          .cell(++rank)
          .cell(run.policy)
          .cell(run.revenue, 2)
          .cell(run.ratioVsTwoPhase, 3)
          .cell(run.certified ? run.dualUpperBound : 0.0, 2)
          .cell(run.wallMs, 2)
          .cell(run.rounds)
          .cell(run.messages)
          .cell(run.raises);
      json.row()
          .field("phase", std::string("oneshot"))
          .field("preset", run.preset)
          .field("policy", run.policy)
          .field("rank", rank)
          .field("certified", run.certified)
          .field("distributed", run.distributed)
          .field("demands", run.demands)
          .field("instances", run.instances)
          .field("admitted", run.admitted)
          .field("revenue", run.revenue)
          .field("revenue_ratio_vs_two_phase", run.ratioVsTwoPhase)
          .field("dual_upper_bound", run.dualUpperBound)
          .field("lambda", run.lambda)
          .field("rounds", run.rounds)
          .field("messages", run.messages)
          .field("raises", run.raises)
          .field("wall_ms", run.wallMs)
          .jsonField("metrics", run.metricsJson);
    }
  }
  oneshot.print(std::cout);

  // ---- Online tournament: churn presets through the epoch loop ---------
  std::cout << "\nonline tournament (churn presets, "
            << "policy/online_policy.hpp epoch loop):\n";
  Table online({"preset", "rank", "policy", "final rev", "vs two_phase",
                "sla mean", "sla max", "resolve frac", "wall ms", "rounds",
                "messages"});
  for (const ScenarioPresetInfo& preset : scenarioPresets()) {
    if (preset.kind.find("churn") == std::string::npos) continue;
    const ScenarioProblem scenario =
        buildScenarioProblem(preset.name, seed, churnDemands);
    std::vector<OnlineRun> runs;
    runs.reserve(policies.size());
    for (const std::string& id : policies) {
      runs.push_back(runOnline(preset.name, scenario, id, seed, churnDemands,
                               threads, telemetry));
    }
    double reference = 0;
    for (const OnlineRun& run : runs) {
      if (run.policy == "two_phase") reference = run.finalRevenue;
    }
    rankByRevenue(runs, [](const OnlineRun& r) { return r.finalRevenue; });
    std::int32_t rank = 0;
    for (OnlineRun& run : runs) {
      if (reference > 0) run.ratioVsTwoPhase = run.finalRevenue / reference;
      online.row()
          .cell(run.preset)
          .cell(++rank)
          .cell(run.policy)
          .cell(run.finalRevenue, 2)
          .cell(run.ratioVsTwoPhase, 3)
          .cell(run.slaMeanEpochs, 2)
          .cell(run.slaMaxEpochs)
          .cell(run.meanResolveFraction, 2)
          .cell(run.wallMs, 2)
          .cell(run.rounds)
          .cell(run.messages);
      json.row()
          .field("phase", std::string("online"))
          .field("preset", run.preset)
          .field("policy", run.policy)
          .field("rank", rank)
          .field("demands", run.demands)
          .field("epochs", run.epochs)
          .field("revenue", run.finalRevenue)
          .field("revenue_ratio_vs_two_phase", run.ratioVsTwoPhase)
          .field("admitted_demands", run.admittedDemands)
          .field("departed_unadmitted", run.departedUnadmitted)
          .field("mean_admission_latency_epochs", run.slaMeanEpochs)
          .field("max_admission_latency_epochs", run.slaMaxEpochs)
          .field("mean_resolve_fraction", run.meanResolveFraction)
          .field("full_resolves", run.fullResolves)
          .field("rounds", run.rounds)
          .field("messages", run.messages)
          .field("wall_ms", run.wallMs)
          .jsonField("metrics", run.metricsJson);
    }
  }
  online.print(std::cout);

  if (!flags.getString("json").empty()) json.write();
  telemetry.finish();
  return 0;
}
