// Experiment E2 — layered decompositions (paper Lemmas 4.2/4.3 and §7).
//
// Measures the critical-set size Delta and the number of groups for the
// tree layering under each decomposition kind, and for the line layering,
// and exhaustively verifies the interference property on each instance.
#include <iostream>

#include "bench_common.hpp"
#include "core/universe.hpp"
#include "decomp/layering.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seed", 1, "base RNG seed");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed"));

  bench::banner(
      "E2",
      "Lemma 4.3: tree layering from the ideal decomposition has Delta <= 6 "
      "and O(log n) groups; §7: line layering has Delta <= 3 and "
      "ceil(lg(Lmax/Lmin)) groups; both satisfy the interference property",
      "Delta columns within bounds; every 'interference' cell 'holds'");

  Table table({"universe", "decomposition", "instances", "groups", "Delta",
               "Delta bound", "interference"});

  for (std::int32_t n : {32, 64, 128}) {
    TreeScenarioConfig cfg;
    cfg.seed = seed + static_cast<std::uint64_t>(n);
    cfg.numVertices = n;
    cfg.numNetworks = 3;
    cfg.demands.numDemands = 2 * n;
    cfg.demands.accessProbability = 0.6;
    const TreeProblem problem = makeTreeScenario(cfg);
    const InstanceUniverse universe =
        InstanceUniverse::fromTreeProblem(problem);
    for (const DecompositionKind kind :
         {DecompositionKind::Ideal, DecompositionKind::Balancing,
          DecompositionKind::RootFixing}) {
      const TreeLayeringResult result =
          buildTreeLayering(problem, universe, kind);
      const std::string bound = kind == DecompositionKind::Ideal ? "6"
                                : kind == DecompositionKind::RootFixing
                                    ? "4"
                                    : "2*(theta+1)";
      table.row()
          .cell("tree n=" + std::to_string(n))
          .cell(decompositionKindName(kind))
          .cell(universe.numInstances())
          .cell(result.layering.numGroups)
          .cell(result.layering.maxCriticalSize)
          .cell(bound)
          .cell(checkLayering(universe, result.layering).empty() ? "holds"
                                                                 : "VIOLATED");
    }
  }

  for (std::int32_t slots : {64, 256}) {
    for (double slack : {0.0, 1.0}) {
      LineScenarioConfig cfg;
      cfg.seed = seed + static_cast<std::uint64_t>(slots) + 7;
      cfg.numSlots = slots;
      cfg.numResources = 3;
      cfg.demands.numDemands = slots;
      cfg.demands.processingMax = slots / 8;
      cfg.demands.windowSlack = slack;
      cfg.demands.accessProbability = 0.6;
      const LineProblem problem = makeLineScenario(cfg);
      const InstanceUniverse universe =
          InstanceUniverse::fromLineProblem(problem);
      const Layering layering = buildLineLayering(universe);
      table.row()
          .cell("line slots=" + std::to_string(slots) + " slack=" +
                formatDouble(slack, 1))
          .cell("length-buckets")
          .cell(universe.numInstances())
          .cell(layering.numGroups)
          .cell(layering.maxCriticalSize)
          .cell("3")
          .cell(checkLayering(universe, layering).empty() ? "holds"
                                                          : "VIOLATED");
    }
  }

  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
