// Experiment E5 — arbitrary heights on trees (Theorem 6.3, Lemma 6.2).
//
// Mixed-height workloads: measures the combined solution against the dual
// certificate (and exact OPT on small instances); sweeps hmin to show the
// 1/hmin factor in the narrow stage count; reports the wide/narrow split
// the combine step chooses from.
#include <iostream>

#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "seeds per configuration");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E5",
      "Theorem 6.3: (80+eps)-approximation for arbitrary heights via wide "
      "(7+eps) + narrow (73+eps, Lemma 6.2) with per-network combine; "
      "narrow stage count scales with 1/hmin",
      "'vs OPT'/'vs dual UB' <= certified 80/(1-eps) everywhere (typically "
      "~1-3x); 'narrow stages' roughly doubles when hmin halves");

  Table table({"n", "m", "hmin", "vs OPT", "OPT exact", "vs dual UB",
               "profit", "wide part", "narrow part", "narrow stages"});

  struct Config {
    std::int32_t n, m;
    double hmin;
  };
  const Config configs[] = {{10, 8, 0.25},  {16, 14, 0.25}, {48, 96, 0.5},
                            {48, 96, 0.25}, {48, 96, 0.125}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      TreeScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 104729 + 31;
      cfg.numVertices = c.n;
      cfg.numNetworks = 2;
      cfg.demands.numDemands = c.m;
      cfg.demands.heights = HeightMode::Mixed;
      cfg.demands.hmin = c.hmin;
      cfg.demands.accessProbability = 0.7;
      const TreeProblem problem = makeTreeScenario(cfg);

      SolverOptions options;
      options.seed = cfg.seed + 1;
      options.hmin = c.hmin;
      const ArbitraryTreeResult result = solveArbitraryTree(problem, options);

      InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
      const bench::OptEstimate opt =
          c.m <= 16 ? bench::estimateOpt(universe)
                    : bench::OptEstimate{result.profit, false};

      const std::int32_t narrowStages =
          result.narrowStats
              ? result.narrowStats->stages /
                    std::max(1, result.narrowStats->epochs)
              : 0;
      table.row()
          .cell(c.n)
          .cell(c.m)
          .cell(c.hmin, 3)
          .cell(opt.exact && result.profit > 0
                    ? formatDouble(opt.lowerBound / result.profit, 3)
                    : std::string("-"))
          .cell(opt.exact ? "yes" : "no")
          .cell(result.profit > 0
                    ? formatDouble(result.dualUpperBound / result.profit, 3)
                    : std::string("-"))
          .cell(result.profit, 1)
          .cell(result.wideProfit, 1)
          .cell(result.narrowProfit, 1)
          .cell(narrowStages);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
