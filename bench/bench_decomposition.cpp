// Experiment E1 — tree-decomposition parameters (paper §4.2, Lemma 4.1).
//
// Regenerates the paper's decomposition trade-off as a table: root-fixing
// (theta = 1, depth up to n), balancing (depth <= ceil(lg n)+1, theta up
// to the depth) and the ideal decomposition (depth <= 2 ceil(lg n)+1,
// theta <= 2) across tree shapes and sizes. The Lemma 4.1 bounds are sharp
// pass/fail: the "ok" column marks depth <= 2*ceil(lg n)+1 AND theta <= 2.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "decomp/tree_decomposition.hpp"
#include "gen/tree_gen.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

std::int32_t ceilLog2(std::int32_t n) {
  std::int32_t k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("max-n", 4096, "largest tree size in the sweep");
  flags.intFlag("seed", 1, "base RNG seed");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);

  bench::banner(
      "E1",
      "Lemma 4.1: ideal tree decomposition has depth <= 2*ceil(lg n)+1 and "
      "pivot size theta <= 2; root-fixing has theta = 1 (deep); balancing is "
      "shallow but theta grows (paper §4.2)",
      "every 'ideal ok' cell true; root-fixing theta always 1; balancing "
      "theta exceeding 2 on some shapes (why the ideal construction exists)");

  Table table({"shape", "n", "rf depth", "rf theta", "bal depth", "bal theta",
               "ideal depth", "ideal theta", "ideal bound", "ideal ok"});
  const auto maxN = static_cast<std::int32_t>(flags.getInt("max-n"));
  Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
  for (const TreeShape shape :
       {TreeShape::UniformRandom, TreeShape::Path, TreeShape::Caterpillar,
        TreeShape::Star, TreeShape::BalancedBinary}) {
    for (std::int32_t n = 16; n <= maxN; n *= 4) {
      Rng treeRng = rng.fork(static_cast<std::uint64_t>(n) * 131 +
                             static_cast<std::uint64_t>(shape));
      const TreeNetwork t = generateTree(shape, 0, n, treeRng);
      const TreeDecomposition rf = rootFixingDecomposition(t);
      const TreeDecomposition bal = balancingDecomposition(t);
      const TreeDecomposition ideal = idealDecomposition(t);
      const std::int32_t bound = 2 * ceilLog2(n) + 1;
      const std::int32_t idealTheta = pivotSize(t, ideal);
      table.row()
          .cell(treeShapeName(shape))
          .cell(n)
          .cell(rf.maxDepth())
          .cell(pivotSize(t, rf))
          .cell(bal.maxDepth())
          .cell(pivotSize(t, bal))
          .cell(ideal.maxDepth())
          .cell(idealTheta)
          .cell(bound)
          .cell(ideal.maxDepth() <= bound && idealTheta <= 2 ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
