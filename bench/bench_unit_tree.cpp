// Experiment E3 — unit-height trees: approximation quality (Theorem 5.3).
//
// Measures p(S) against the exact optimum (branch-and-bound, small
// instances) and against the LP-dual certificate val/lambda (all sizes).
// The paper proves ratio <= 7+eps; typical measured ratios are far better.
// Also compares against the profit-greedy baseline.
#include <iostream>

#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "exact/greedy.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "seeds per configuration");
  flags.doubleFlag("epsilon", 0.1, "approximation slack");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");
  const double epsilon = flags.getDouble("epsilon");

  bench::banner(
      "E3",
      "Theorem 5.3: distributed (7+eps)-approximation for unit-height "
      "tree-networks",
      "'vs OPT' (when exact) and 'vs dual UB' ratios <= certified bound "
      "7/(1-eps) on every row, typically ~1-2x; algorithm beats or matches "
      "greedy on most rows");

  Table table({"n", "m", "r", "vs OPT", "OPT exact", "vs dual UB", "certified",
               "profit", "greedy", "rounds(MIS)"});

  struct Config {
    std::int32_t n, m, r;
  };
  const Config configs[] = {{12, 10, 2},   {16, 16, 2},  {24, 20, 3},
                            {64, 96, 3},   {128, 256, 4}, {256, 512, 4}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      TreeScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 7919 + 11;
      cfg.numVertices = c.n;
      cfg.numNetworks = c.r;
      cfg.demands.numDemands = c.m;
      cfg.demands.accessProbability = 0.7;
      cfg.demands.profitMax = 10.0;
      const TreeProblem problem = makeTreeScenario(cfg);

      SolverOptions options;
      options.epsilon = epsilon;
      options.seed = cfg.seed + 1;
      const TreeSolveResult result = solveUnitTree(problem, options);

      InstanceUniverse universe = InstanceUniverse::fromTreeProblem(problem);
      const bench::OptEstimate opt =
          c.m <= 20 ? bench::estimateOpt(universe)
                    : bench::OptEstimate{result.profit, false};
      const GreedyResult greedy = greedyByProfit(universe);

      table.row()
          .cell(c.n)
          .cell(c.m)
          .cell(c.r)
          .cell(opt.exact ? formatDouble(opt.lowerBound / result.profit, 3)
                          : std::string("-"))
          .cell(opt.exact ? "yes" : "no")
          .cell(result.dualUpperBound / result.profit, 3)
          .cell(result.certifiedBound, 3)
          .cell(result.profit, 1)
          .cell(greedy.profit, 1)
          .cell(result.stats.misRounds);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
