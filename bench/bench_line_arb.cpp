// Experiment E7 — arbitrary heights on lines with windows (Theorem 7.2).
//
// (23+eps) via wide (4+eps) + narrow (19+eps) with per-resource combine,
// against a PS-style threshold baseline on identical inputs. PS's
// published arbitrary-height constant is (55+eps) with different raise
// details; the reconstruction here changes ONLY the schedule policy, so
// the gap isolates the staged-slackness contribution.
#include <iostream>

#include "algo/line_solvers.hpp"
#include "bench_common.hpp"
#include "core/universe.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("seeds", 3, "seeds per configuration");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E7",
      "Theorem 7.2: (23+eps)-approximation for arbitrary-height "
      "lines+windows (wide 4+eps + narrow 19+eps)",
      "'ours vs UB' <= 23/(1-eps) everywhere (typically ~1-4x); ours' "
      "certified bound ~5x better than the threshold baseline; measured "
      "profit >= baseline on most rows");

  Table table({"slots", "m", "hmin", "ours", "PS-style", "OPT", "ours vs UB",
               "ours bound", "PS bound", "wide part", "narrow part"});

  struct Config {
    std::int32_t slots, m;
    double hmin;
  };
  const Config configs[] = {
      {20, 7, 0.25}, {48, 32, 0.5}, {48, 32, 0.25}, {128, 96, 0.25}};
  for (const Config& c : configs) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      LineScenarioConfig cfg;
      cfg.seed = static_cast<std::uint64_t>(s) * 6700417 + 51;
      cfg.numSlots = c.slots;
      cfg.numResources = 2;
      cfg.demands.numDemands = c.m;
      cfg.demands.heights = HeightMode::Mixed;
      cfg.demands.hmin = c.hmin;
      cfg.demands.processingMax = std::max(2, c.slots / 8);
      cfg.demands.windowSlack = 0.5;
      cfg.demands.accessProbability = 0.7;
      const LineProblem problem = makeLineScenario(cfg);

      SolverOptions options;
      options.seed = cfg.seed + 1;
      options.hmin = c.hmin;
      const ArbitraryLineResult ours = solveArbitraryLine(problem, options);
      const ArbitraryLineResult ps =
          solvePanconesiSozioArbitraryLine(problem, options);

      std::string optCell = "-";
      if (c.m <= 8) {
        InstanceUniverse universe = InstanceUniverse::fromLineProblem(problem);
        const bench::OptEstimate opt = bench::estimateOpt(universe);
        if (opt.exact) optCell = formatDouble(opt.lowerBound, 1);
      }

      table.row()
          .cell(c.slots)
          .cell(c.m)
          .cell(c.hmin, 3)
          .cell(ours.profit, 1)
          .cell(ps.profit, 1)
          .cell(optCell)
          .cell(ours.profit > 0
                    ? formatDouble(ours.dualUpperBound / ours.profit, 3)
                    : std::string("-"))
          .cell(ours.certifiedBound, 2)
          .cell(ps.certifiedBound, 2)
          .cell(ours.wideProfit, 1)
          .cell(ours.narrowProfit, 1);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
