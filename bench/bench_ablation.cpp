// Experiment E10 — ablations of the paper's two technical contributions.
//
// (a) Schedule: staged (lambda = 1-eps, this paper) vs threshold
//     (lambda = 1/(5+eps), Panconesi-Sozio) on identical tree instances
//     with the identical ideal layering — isolates contribution #2.
// (b) Decomposition behind the layering: ideal (theta = 2 -> Delta <= 6)
//     vs balancing (theta up to lg n -> larger Delta) vs root-fixing
//     (Delta <= 4 but depth/groups up to n) — isolates contribution #1;
//     the root-fixing column shows WHY depth matters: its epoch count
//     explodes, which is exactly the round blow-up the ideal
//     decomposition removes.
#include <iostream>

#include "algo/tree_solvers.hpp"
#include "bench_common.hpp"
#include "gen/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace treesched;

namespace {

TreeProblem makeProblem(std::uint64_t seed, std::int32_t n) {
  TreeScenarioConfig cfg;
  cfg.seed = seed;
  cfg.numVertices = n;
  cfg.numNetworks = 3;
  cfg.demands.numDemands = 2 * n;
  cfg.demands.accessProbability = 0.7;
  return makeTreeScenario(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.intFlag("n", 96, "vertices per tree");
  flags.intFlag("seeds", 3, "instances per variant");
  bench::Telemetry::addFlags(flags);
  if (!flags.parse(argc, argv)) return 0;
  bench::Telemetry telemetry(flags);
  const auto n = static_cast<std::int32_t>(flags.getInt("n"));
  const auto seeds = flags.getInt("seeds");

  bench::banner(
      "E10",
      "ablations: staged-vs-threshold schedule (paper contribution 2) and "
      "ideal-vs-balancing-vs-root-fixing decomposition (contribution 1)",
      "(a) staged lambda ~0.9 vs threshold ~0.196 -> ~4.6x tighter "
      "certificate at equal Delta; (b) ideal keeps Delta <= 6 with few "
      "epochs; balancing inflates Delta; root-fixing keeps Delta small but "
      "explodes the epoch count (the depth/theta trade-off of §4.2)");

  Table table({"variant", "seed", "Delta", "epochs", "lambda", "certified",
               "profit", "vs dual UB", "MIS rounds"});

  struct Variant {
    std::string name;
    SchedulePolicy schedule;
    DecompositionKind decomposition;
  };
  const Variant variants[] = {
      {"staged+ideal (paper)", SchedulePolicy::Staged,
       DecompositionKind::Ideal},
      {"threshold+ideal (PS schedule)", SchedulePolicy::Threshold,
       DecompositionKind::Ideal},
      {"staged+balancing", SchedulePolicy::Staged,
       DecompositionKind::Balancing},
      {"staged+root-fixing", SchedulePolicy::Staged,
       DecompositionKind::RootFixing},
  };

  for (const Variant& v : variants) {
    for (std::int64_t s = 0; s < seeds; ++s) {
      const TreeProblem problem =
          makeProblem(static_cast<std::uint64_t>(s) * 2654435761 + 81, n);
      SolverOptions options;
      options.seed = static_cast<std::uint64_t>(s) + 7;
      options.schedule = v.schedule;
      options.decomposition = v.decomposition;
      const TreeSolveResult r = solveUnitTree(problem, options);
      table.row()
          .cell(v.name)
          .cell(s)
          .cell(r.stats.delta)
          .cell(r.stats.epochs)
          .cell(r.stats.lambdaMeasured, 4)
          .cell(r.certifiedBound, 2)
          .cell(r.profit, 1)
          .cell(r.dualUpperBound / r.profit, 3)
          .cell(r.stats.misRounds);
    }
  }
  table.print(std::cout);
  bench::finishUninstrumented(telemetry);
  return 0;
}
